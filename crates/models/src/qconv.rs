//! Quantized convolution with AMS error injection (paper Fig. 3).

use std::sync::Arc;

use ams_core::error_model::ErrorModel;
use ams_core::vmac_sim::VmacSimulator;
use ams_nn::functional::{conv2d_backward, conv2d_forward, conv2d_forward_i8, ConvCache};
use ams_nn::{Layer, Mode, Param};
use ams_quant::{build_quantizer, Quantizer};
use ams_tensor::obs::WelfordState;
use ams_tensor::{
    im2col_in, mat_to_nchw_in, noise_stream_seed, rng, ConvGeom, ExecCtx, KernelDispatch, Tensor,
};
use rand::Rng;

use crate::config::{HardwareConfig, InputKind};
use crate::frozen::FrozenLayerWeights;

/// A convolution implementing the paper's quantized layer (Fig. 3):
/// input activations quantized to `B_X` bits, shadow FP32 weights
/// DoReFa-quantized to `B_W` bits each forward pass, and the lumped AMS
/// error of Eq. 2 added to the output — forward pass only, backward
/// untouched.
///
/// With [`HardwareConfig::fp32`] the layer degenerates to an exact plain
/// convolution, so the same type serves the FP32 baseline and both
/// hardware variants (weights transfer by name through checkpoints).
///
/// # Example
///
/// ```
/// use ams_models::{HardwareConfig, InputKind, QConv2d};
/// use ams_nn::{Layer, Mode};
/// use ams_tensor::{rng, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let hw = HardwareConfig::fp32();
/// let mut conv = QConv2d::new("stem", 3, 8, 3, 1, 1, &hw, InputKind::SignedRescaled, 0, &mut r);
/// let y = conv.forward(&ExecCtx::serial(), &Tensor::zeros(&[1, 3, 8, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[1, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct QConv2d {
    name: String,
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    quantizer: Box<dyn Quantizer>,
    input_kind: InputKind,
    hw: HardwareConfig,
    layer_index: u64,
    model: Box<dyn ErrorModel>,
    cache: Option<ConvCache>,
    ste_scale: Option<Tensor>,
    frozen: Option<Arc<FrozenLayerWeights>>,
    request_seeds: Option<(Arc<Vec<u64>>, u64)>,
    probe_enabled: bool,
    probe_sum: f64,
    probe_count: usize,
    last_macs_per_image: Option<usize>,
}

impl QConv2d {
    /// Creates a quantized convolution (no bias — a batch-norm layer
    /// always follows in the paper's networks).
    ///
    /// `layer_index` decorrelates this layer's noise stream from its
    /// siblings under the shared [`HardwareConfig::noise_seed`].
    ///
    /// # Panics
    ///
    /// Panics if any of `c_in`, `c_out`, `k`, `stride` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        hw: &HardwareConfig,
        input_kind: InputKind,
        layer_index: u64,
        init_rng: &mut R,
    ) -> Self {
        assert!(
            c_in > 0 && c_out > 0 && k > 0 && stride > 0,
            "QConv2d: zero-sized configuration"
        );
        let name = name.into();
        let mut w = Tensor::zeros(&[c_out, c_in, k, k]);
        rng::fill_kaiming(&mut w, c_in * k * k, init_rng);
        let weight = Param::new(format!("{name}.weight"), w);
        QConv2d {
            model: hw.build_error_model(layer_index),
            quantizer: build_quantizer(hw.quant, hw.scheme),
            input_kind,
            hw: *hw,
            layer_index,
            weight,
            name,
            c_in,
            c_out,
            k,
            stride,
            pad,
            cache: None,
            ste_scale: None,
            frozen: None,
            request_seeds: None,
            probe_enabled: false,
            probe_sum: 0.0,
            probe_count: 0,
            last_macs_per_image: None,
        }
    }

    /// `N_tot` of this layer: multiplies per output activation.
    pub fn n_tot(&self) -> usize {
        self.c_in * self.k * self.k
    }

    /// Immutable access to the shadow FP32 weight.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The lumped-equivalent σ of the error this layer injects per output
    /// element (`None` when the configured error model injects nothing).
    pub fn error_sigma(&self) -> Option<f32> {
        self.model.sigma_hint(self.n_tot())
    }

    /// The live error model realizing this layer's hardware error budget.
    pub fn error_model(&self) -> &dyn ErrorModel {
        self.model.as_ref()
    }

    /// Reseeds the AMS noise stream (fresh noise per validation pass).
    pub fn reseed_noise(&mut self, pass_seed: u64, layer_index: u64) {
        self.model.reseed(noise_stream_seed(pass_seed, layer_index));
    }

    /// The current cursor of this layer's noise stream (checkpoint/resume).
    pub fn noise_state(&self) -> ams_tensor::rng::RngState {
        self.model
            .rng_cursors()
            .into_iter()
            .next()
            .expect("every error model owns one RNG stream")
    }

    /// Repositions the noise stream at a captured cursor.
    pub fn restore_noise_state(&mut self, state: &ams_tensor::rng::RngState) {
        self.model.restore(std::slice::from_ref(state));
    }

    /// Quantizes the shadow weights once into an immutable eval-ready
    /// form, installs it on this layer, and returns it for sharing with
    /// worker replicas ([`crate::SharedModelWeights`]).
    ///
    /// Deterministic quantization makes subsequent eval forwards
    /// bit-identical to the per-forward quantization they skip. Training
    /// ignores the frozen copy (the shadows keep moving), and a mismatch
    /// overlay is folded in here — it is deterministic per layer — with
    /// the i8 form omitted, matching the live dispatch gate.
    pub fn freeze_eval_weights(&mut self, ctx: &ExecCtx) -> Arc<FrozenLayerWeights> {
        let ws = ctx.workspace();
        let qw = self.quantizer.quantize_weights_in(ws, &self.weight.value);
        let density = qw.density;
        ws.recycle(qw.ste_scale);
        let realized = match self.model.realize_weights(&qw.values, self.layer_index) {
            Some(r) => {
                ws.recycle(qw.values);
                r
            }
            None => qw.values,
        };
        let wmat = realized
            .reshape(&[self.c_out, self.c_in * self.k * self.k])
            .expect("QConv2d: weight matrix shape");
        let i8 = (self.quantizer.weight_bits() <= 8 && !self.model.perturbs_weights()).then(|| {
            self.quantizer
                .quantize_weights_i8_in(ws, &self.weight.value)
        });
        let frozen = Arc::new(FrozenLayerWeights { wmat, density, i8 });
        self.frozen = Some(Arc::clone(&frozen));
        frozen
    }

    /// Installs frozen weights produced by [`QConv2d::freeze_eval_weights`]
    /// on a twin layer (same architecture, typically another worker's
    /// replica), so replicas share one weight buffer.
    ///
    /// # Panics
    ///
    /// Panics if the frozen matrix does not match this layer's shape.
    pub fn adopt_frozen_weights(&mut self, fw: Arc<FrozenLayerWeights>) {
        assert_eq!(
            fw.wmat.dims(),
            &[self.c_out, self.c_in * self.k * self.k],
            "QConv2d {}: frozen weights from a different architecture",
            self.name
        );
        self.frozen = Some(fw);
    }

    /// Sets (or clears) the per-request noise seeds for the next eval
    /// forward: image `i` of the batch draws its layer noise from
    /// `noise_stream_seed(seeds[i], noise_index)`, exactly the stream an
    /// offline `reseed_noise(seeds[i])` + batch-1 forward would use —
    /// that is what makes coalesced serving batches bit-identical to
    /// offline evaluation. `noise_index` is the same sequential index
    /// `reseed_noise` assigns this layer.
    pub fn set_request_noise_seeds(&mut self, seeds: Option<Arc<Vec<u64>>>, noise_index: u64) {
        self.request_seeds = seeds.map(|s| (s, noise_index));
    }

    /// Enables or disables output-mean probing (paper Fig. 6); enabling
    /// resets the accumulator.
    pub fn set_probe(&mut self, enabled: bool) {
        self.probe_enabled = enabled;
        self.probe_sum = 0.0;
        self.probe_count = 0;
    }

    /// Mean of all outputs observed since probing was enabled, or `None`
    /// if nothing has been observed.
    pub fn probe_mean(&self) -> Option<f32> {
        (self.probe_count > 0).then(|| (self.probe_sum / self.probe_count as f64) as f32)
    }

    /// MAC operations per image of the most recent forward pass
    /// (`None` before any forward).
    pub fn macs_per_image(&self) -> Option<usize> {
        self.last_macs_per_image
    }

    /// The §4 fine-grained path: lower the convolution, chop every
    /// reduction into `N_mult`-sized analog partial sums, and push each
    /// through the simulator's modeled conversion (plain quantizing, ΔΣ
    /// error recycling, or reference-scaled), accumulating the digital
    /// codes.
    fn forward_per_vmac(
        &self,
        ctx: &ExecCtx,
        xq: &Tensor,
        wmat: &Tensor,
        sim: &VmacSimulator,
    ) -> Tensor {
        let ws = ctx.workspace();
        let (n, c_in, h, w) = xq.dims4();
        let geom = ConvGeom::new(n, c_in, h, w, self.k, self.k, self.stride, self.pad);
        let cols = im2col_in(ctx, xq, &geom);
        let (rows, ncols) = (geom.rows(), geom.cols());
        let n_mult = sim.vmac().n_mult;
        let n_chunks = rows.div_ceil(n_mult);
        let wd = wmat.data();
        let cd = cols.data();
        let mut ymat = ws.take_tensor(&[self.c_out, ncols]);
        // Each output channel's row is independent, so the chunked-ADC
        // simulation parallelizes over `c_out` (one chunk per channel).
        ctx.for_each_chunk(ymat.data_mut(), ncols, rows * ncols, |co, yrow| {
            let wrow = &wd[co * rows..(co + 1) * rows];
            let mut acc = vec![0.0f64; ncols];
            // ΔΣ error memory, carried per output element across the
            // successive conversions of its partial sums.
            let mut feedback = vec![0.0f64; ncols];
            let mut chunk_start = 0;
            let mut k = 0;
            while chunk_start < rows {
                let chunk_end = (chunk_start + n_mult).min(rows);
                for a in acc.iter_mut() {
                    *a = 0.0;
                }
                for r in chunk_start..chunk_end {
                    let wv = f64::from(wrow[r]);
                    if wv == 0.0 {
                        continue;
                    }
                    let crow = &cd[r * ncols..(r + 1) * ncols];
                    for (a, &cv) in acc.iter_mut().zip(crow) {
                        *a += wv * f64::from(cv);
                    }
                }
                for ((yv, &a), fb) in yrow.iter_mut().zip(acc.iter()).zip(feedback.iter_mut()) {
                    *yv += sim.convert_partial(a, k, n_chunks, fb) as f32;
                }
                chunk_start = chunk_end;
                k += 1;
            }
        });
        let y = mat_to_nchw_in(ctx, &ymat, &geom, self.c_out);
        ws.recycle(ymat);
        ws.recycle(cols);
        y
    }

    fn quantize_input(&self, ctx: &ExecCtx, input: &Tensor) -> Tensor {
        let ws = ctx.workspace();
        match self.input_kind {
            InputKind::Unit => self.quantizer.quantize_activations_in(ws, input),
            InputKind::SignedRescaled => {
                // [0, 1] → [-1, 1], then sign-magnitude quantization.
                let rescaled = ws.map_tensor(input, |v| 2.0 * v - 1.0);
                let q = self.quantizer.quantize_signed_in(ws, &rescaled);
                ws.recycle(rescaled);
                q
            }
        }
    }
}

impl Layer for QConv2d {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.forward", self.name));
        let ws = ctx.workspace();
        // Retire last forward's pooled tensors before drawing new ones, so
        // steady-state passes cycle a fixed set of buffers instead of
        // growing the pool.
        if let Some(old) = self.cache.take() {
            ws.recycle(old.cols);
            ws.recycle(old.weight_mat);
        }
        if let Some(old) = self.ste_scale.take() {
            ws.recycle(old);
        }
        let xq = self.quantize_input(ctx, input);
        let injecting = self.hw.injects(mode.is_train(), false);
        // Paper §4's fine-grained mode: chunked per-VMAC conversion
        // simulation, evaluation only (training keeps the fast additive
        // model the error model falls back to).
        let operand_sim = if injecting && !mode.is_train() {
            self.model.operand_sim()
        } else {
            None
        };
        // The integer GEMM fast path: eval-only, both widths ≤ 8 bits, no
        // f32 weight perturbation, and not replaced by the per-VMAC
        // simulation. Error injection still runs on the f32 output below —
        // only the dot product moves to i8.
        let use_i8 = ctx.kernel() == KernelDispatch::I8
            && !mode.is_train()
            && self.quantizer.weight_bits() <= 8
            && self.quantizer.activation_bits() <= 8
            && !self.model.perturbs_weights()
            && operand_sim.is_none();
        // Frozen eval weights (serving replicas): skip the per-forward
        // quantization entirely. Training ignores the frozen copy.
        let frozen = if mode.is_train() {
            None
        } else {
            self.frozen.clone()
        };
        let (mut y, cache) = if let Some(fw) = &frozen {
            let frozen_i8 = ctx.kernel() == KernelDispatch::I8
                && fw.i8.is_some()
                && self.quantizer.activation_bits() <= 8
                && operand_sim.is_none();
            if frozen_i8 {
                let qi = fw.i8.as_ref().expect("gated on i8.is_some()");
                if self.request_seeds.is_some() {
                    // The i8 activation re-coding scale is computed per
                    // tensor, so a batched call is not batch-invariant.
                    // Per-request reproducibility demands each image be
                    // coded alone — exactly what offline batch-1
                    // evaluation does; only the GEMM loses batch
                    // amortization, the rest of the net stays batched.
                    let (n, c, h, w) = xq.dims4();
                    let per_image = c * h * w;
                    let mut one = ws.take_tensor(&[1, c, h, w]);
                    let mut y_all: Option<Tensor> = None;
                    for i in 0..n {
                        one.data_mut()
                            .copy_from_slice(&xq.data()[i * per_image..(i + 1) * per_image]);
                        let yi = conv2d_forward_i8(
                            ctx,
                            &one,
                            &qi.codes,
                            qi.scale,
                            qi.sparse,
                            None,
                            self.k,
                            self.k,
                            self.stride,
                            self.pad,
                            self.c_out,
                        );
                        let y = y_all.get_or_insert_with(|| {
                            let mut dims = yi.dims().to_vec();
                            dims[0] = n;
                            ws.take_tensor(&dims)
                        });
                        let per_out = yi.len();
                        y.data_mut()[i * per_out..(i + 1) * per_out].copy_from_slice(yi.data());
                        ws.recycle(yi);
                    }
                    ws.recycle(one);
                    (y_all.expect("batch is never empty"), None)
                } else {
                    let y = conv2d_forward_i8(
                        ctx,
                        &xq,
                        &qi.codes,
                        qi.scale,
                        qi.sparse,
                        None,
                        self.k,
                        self.k,
                        self.stride,
                        self.pad,
                        self.c_out,
                    );
                    (y, None)
                }
            } else if let Some(sim) = &operand_sim {
                (self.forward_per_vmac(ctx, &xq, &fw.wmat, sim), None)
            } else {
                conv2d_forward(
                    ctx,
                    &xq,
                    &fw.wmat,
                    fw.density,
                    None,
                    self.k,
                    self.k,
                    self.stride,
                    self.pad,
                    false,
                )
            }
        } else if use_i8 {
            let qi = self
                .quantizer
                .quantize_weights_i8_in(ws, &self.weight.value);
            let y = conv2d_forward_i8(
                ctx,
                &xq,
                &qi.codes,
                qi.scale,
                qi.sparse,
                None,
                self.k,
                self.k,
                self.stride,
                self.pad,
                self.c_out,
            );
            (y, None)
        } else {
            let qw = self.quantizer.quantize_weights_in(ws, &self.weight.value);
            let density = qw.density;
            let ste_scale = qw.ste_scale;
            let realized = match self.model.realize_weights(&qw.values, self.layer_index) {
                Some(r) => {
                    ws.recycle(qw.values);
                    r
                }
                None => qw.values,
            };
            let wmat = realized
                .reshape(&[self.c_out, self.c_in * self.k * self.k])
                .expect("QConv2d: weight matrix shape");
            let (y, cache) = if let Some(sim) = &operand_sim {
                (self.forward_per_vmac(ctx, &xq, &wmat, sim), None)
            } else {
                conv2d_forward(
                    ctx,
                    &xq,
                    &wmat,
                    density,
                    None,
                    self.k,
                    self.k,
                    self.stride,
                    self.pad,
                    mode.is_train(),
                )
            };
            ws.recycle(wmat);
            if mode.is_train() {
                self.ste_scale = Some(ste_scale);
            } else {
                ws.recycle(ste_scale);
            }
            (y, cache)
        };
        ws.recycle(xq);
        if injecting && operand_sim.is_none() {
            let n_tot = self.n_tot();
            if let Some((seeds, noise_index)) = (!mode.is_train())
                .then(|| self.request_seeds.clone())
                .flatten()
            {
                // Per-request noise streams (serving): image `i` draws the
                // exact stream an offline reseed_noise(seeds[i]) + batch-1
                // forward would, so coalesced batches stay bit-identical
                // to offline evaluation regardless of batch composition.
                let n = y.dims()[0];
                assert_eq!(
                    seeds.len(),
                    n,
                    "QConv2d {}: {} request seeds for batch of {n}",
                    self.name,
                    seeds.len()
                );
                let per_image = y.len() / n;
                for (i, chunk) in y.data_mut().chunks_mut(per_image).enumerate() {
                    self.model.reseed(noise_stream_seed(seeds[i], noise_index));
                    self.model.inject_slice(chunk, n_tot);
                }
            } else if ctx.metrics().enabled() {
                // Traced injection draws the identical RNG stream, so the
                // noisy activations are bit-identical with metrics on or off.
                let stats = self.model.inject_traced(&mut y, n_tot);
                if !stats.is_empty() {
                    let enob = self.hw.vmac.expect("injects() implies a VMAC").enob;
                    // Key by scenario and ENOB: sweeps (Fig. 4/5) drive
                    // the same layer at several ENOBs, and each (model,
                    // ENOB) pair has a different error distribution.
                    ctx.metrics().merge_observations(
                        &self.hw.noise_gauge_key(&self.name, self.model.kind(), enob),
                        &stats,
                    );
                }
            } else {
                self.model.inject(&mut y, n_tot);
            }
        }
        if ctx.metrics().enabled() {
            // Activation-mean drift at the conv output (paper Fig. 6).
            let mut acts = WelfordState::new();
            for &v in y.data() {
                acts.push(f64::from(v));
            }
            ctx.metrics()
                .merge_observations(&format!("act.{}", self.name), &acts);
        }
        if self.probe_enabled {
            self.probe_sum += f64::from(y.sum());
            self.probe_count += y.len();
        }
        let batch = y.dims()[0].max(1);
        self.last_macs_per_image = Some(y.len() / batch * self.n_tot());
        self.cache = cache;
        y
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.backward", self.name));
        let cache = self
            .cache
            .as_ref()
            .expect("QConv2d::backward without a Train-mode forward");
        let (dxq, dwmat, _) = conv2d_backward(ctx, cache, grad_output);
        let ste = self
            .ste_scale
            .as_ref()
            .expect("STE scale cached in Train forward");
        let dw = dwmat
            .reshape(&[self.c_out, self.c_in, self.k, self.k])
            .expect("weight grad shape")
            .mul(ste);
        self.weight.grad.add_assign(&dw);
        match self.input_kind {
            // STE through the activation quantizer: passthrough.
            InputKind::Unit => dxq,
            // The [0,1]→[-1,1] affine contributes a factor of 2.
            InputKind::SignedRescaled => dxq.map(|g| 2.0 * g),
        }
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::vmac::Vmac;
    use ams_quant::QuantConfig;

    fn input() -> Tensor {
        let mut t = Tensor::zeros(&[2, 3, 6, 6]);
        let mut r = rng::seeded(5);
        rng::fill_uniform(&mut t, 0.0, 1.0, &mut r);
        t
    }

    #[test]
    fn fp32_config_matches_plain_conv() {
        let mut r = rng::seeded(0);
        let hw = HardwareConfig::fp32();
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        // Plain conv with the same weights.
        let x = input();
        let y = qc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let wmat = qc.weight().value.reshaped(&[4, 27]);
        let (want, _) = conv2d_forward(
            &ExecCtx::serial(),
            &x,
            &wmat,
            ams_tensor::Density::Sample,
            None,
            3,
            3,
            1,
            1,
            false,
        );
        assert_eq!(y, want);
    }

    #[test]
    fn quantization_bounds_weights() {
        let mut r = rng::seeded(1);
        let hw = HardwareConfig::quantized(QuantConfig::w6a4());
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        let y1 = qc.forward(&ExecCtx::serial(), &input(), Mode::Eval);
        // The effective weights are bounded by 1 so |y| ≤ N_tot.
        assert!(y1.max_abs() <= qc.n_tot() as f32);
    }

    #[test]
    fn eval_injection_adds_noise_with_model_sigma() {
        let mut r = rng::seeded(2);
        let vmac = Vmac::new(8, 8, 8, 8.0);
        let quiet = HardwareConfig::quantized(QuantConfig::w8a8());
        let noisy = HardwareConfig::ams(QuantConfig::w8a8(), vmac);
        let mut a = QConv2d::new("c", 3, 8, 3, 1, 1, &quiet, InputKind::Unit, 0, &mut r);
        let mut r2 = rng::seeded(2); // identical init
        let mut b = QConv2d::new("c", 3, 8, 3, 1, 1, &noisy, InputKind::Unit, 0, &mut r2);
        let x = input();
        let clean = a.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let dirty = b.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let diff = dirty.sub(&clean);
        let sigma = b.error_sigma().unwrap();
        let measured =
            (diff.data().iter().map(|&v| (v * v) as f64).sum::<f64>() / diff.len() as f64).sqrt();
        assert!(
            (measured / f64::from(sigma) - 1.0).abs() < 0.1,
            "measured {measured} vs model {sigma}"
        );
    }

    #[test]
    fn train_mode_respects_injection_flags() {
        let mut r = rng::seeded(3);
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let hw = HardwareConfig::ams_eval_only(QuantConfig::w8a8(), vmac);
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        let x = input();
        let y_train = qc.forward(&ExecCtx::serial(), &x, Mode::Train);
        // Re-forward in train mode: deterministic (no injection).
        let y_train2 = qc.forward(&ExecCtx::serial(), &x, Mode::Train);
        assert_eq!(y_train, y_train2);
        // Eval injects: differs from the train output.
        let y_eval = qc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_ne!(y_train, y_eval);
    }

    #[test]
    fn backward_routes_through_ste() {
        let mut r = rng::seeded(4);
        let hw = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        let x = input();
        let y = qc.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = qc.backward(&ExecCtx::serial(), &Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert!(
            qc.weight().grad.max_abs() > 0.0,
            "gradient must reach the shadow weight"
        );
    }

    #[test]
    fn signed_input_backward_scales_by_two() {
        let mut r = rng::seeded(6);
        let hw = HardwareConfig::fp32();
        let mut unit = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        let mut r2 = rng::seeded(6);
        let mut signed = QConv2d::new(
            "c",
            3,
            4,
            3,
            1,
            1,
            &hw,
            InputKind::SignedRescaled,
            0,
            &mut r2,
        );
        let x = input();
        let dy = Tensor::ones(unit.forward(&ExecCtx::serial(), &x, Mode::Train).dims());
        let dx_unit = unit.backward(&ExecCtx::serial(), &dy);
        signed.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx_signed = signed.backward(&ExecCtx::serial(), &dy);
        for (u, s) in dx_unit.data().iter().zip(dx_signed.data()) {
            assert!((2.0 * u - s).abs() < 1e-5);
        }
    }

    #[test]
    fn probe_accumulates_output_mean() {
        let mut r = rng::seeded(7);
        let hw = HardwareConfig::fp32();
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        qc.set_probe(true);
        let x = input();
        let y = qc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let got = qc.probe_mean().unwrap();
        assert!((got - y.mean()).abs() < 1e-6);
        qc.set_probe(false);
        assert!(qc.probe_mean().is_none());
    }

    #[test]
    fn i8_kernel_stays_within_the_quantization_bound() {
        let mut r = rng::seeded(11);
        let hw = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        let x = input();
        let want = qc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let got = qc.forward(
            &ExecCtx::serial().with_kernel(KernelDispatch::I8),
            &x,
            Mode::Eval,
        );
        // DoReFa bounds: |w_q| ≤ 1, activations in [0, 1], so both i8
        // re-coding scales are at most 1/127 (see matmul_i8 module docs).
        let s = 1.0f32 / 127.0;
        let bound = qc.n_tot() as f32 * (s + s * s * 0.25) + 1e-4;
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g - w).abs() <= bound,
                "elem {i}: i8 {g} vs f32 {w}, bound {bound}"
            );
        }
    }

    #[test]
    fn i8_kernel_is_inert_in_train_mode_and_on_wide_configs() {
        let mut r = rng::seeded(12);
        let hw = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        let x = input();
        let i8ctx = ExecCtx::serial().with_kernel(KernelDispatch::I8);
        // Training always runs the f32 kernels (the i8 path has no
        // backward), so the same layer re-forwarded under the i8 context
        // must be bit-identical.
        let t1 = qc.forward(&ExecCtx::serial(), &x, Mode::Train);
        let t2 = qc.forward(&i8ctx, &x, Mode::Train);
        assert_eq!(t1, t2);
        // FP32 hardware (32-bit widths) fails the ≤8-bit gate: the i8
        // context must still produce the exact f32 result.
        let mut r2 = rng::seeded(12);
        let hw32 = HardwareConfig::fp32();
        let mut wide = QConv2d::new("c", 3, 4, 3, 1, 1, &hw32, InputKind::Unit, 0, &mut r2);
        let e1 = wide.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let e2 = wide.forward(&i8ctx, &x, Mode::Eval);
        assert_eq!(e1, e2);
    }

    #[test]
    fn i8_kernel_defers_to_f32_under_weight_mismatch() {
        use ams_core::mismatch::MismatchModel;
        let mut r = rng::seeded(13);
        let hw = HardwareConfig::quantized(QuantConfig::w8a8())
            .with_mismatch(MismatchModel::new(0.05, 42));
        let mut qc = QConv2d::new("c", 3, 4, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
        assert!(qc.error_model().perturbs_weights());
        let x = input();
        // Mismatch perturbs f32 weights, which the pre-coded integer path
        // cannot represent — the gate must fall back to the f32 kernels
        // and reproduce them exactly.
        let want = qc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let got = qc.forward(
            &ExecCtx::serial().with_kernel(KernelDispatch::I8),
            &x,
            Mode::Eval,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn noise_streams_differ_per_layer() {
        assert_ne!(noise_stream_seed(1, 0), noise_stream_seed(1, 1));
        assert_ne!(noise_stream_seed(1, 0), noise_stream_seed(2, 0));
    }
}
