//! The residual basic block.

use ams_nn::{BatchNorm2d, ClippedRelu, Layer, Mode, Param};
use ams_tensor::{ExecCtx, Tensor};
use rand::Rng;

use crate::config::{HardwareConfig, InputKind};
use crate::qconv::QConv2d;

/// A ResNet basic block with quantized convolutions:
/// `conv(3×3) → BN → ReLU1 → conv(3×3) → BN`, a skip connection (with a
/// 1×1 quantized convolution + BN when the shape changes), and a final
/// ReLU1 after the residual addition.
///
/// DoReFa replaces every activation with a ReLU clipped at 1, so the
/// residual sum (bounded by 2) is re-bounded to `[0, 1]` before feeding
/// the next quantized layer.
///
/// # Example
///
/// ```
/// use ams_models::{BasicBlock, HardwareConfig};
/// use ams_nn::{Layer, Mode};
/// use ams_tensor::{rng, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut blk = BasicBlock::new("s2.b0", 8, 16, 2, &HardwareConfig::fp32(), 3, &mut r);
/// let y = blk.forward(&ExecCtx::serial(), &Tensor::zeros(&[1, 8, 8, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[1, 16, 4, 4]);
/// ```
#[derive(Debug)]
pub struct BasicBlock {
    name: String,
    conv1: QConv2d,
    bn1: BatchNorm2d,
    act1: ClippedRelu,
    conv2: QConv2d,
    bn2: BatchNorm2d,
    down: Option<(QConv2d, BatchNorm2d)>,
    act2: ClippedRelu,
}

impl BasicBlock {
    /// Number of noise-stream indices a block consumes (conv1, conv2, and
    /// a possible downsample conv — reserved unconditionally so indices
    /// stay stable across configurations).
    pub const NOISE_SLOTS: u64 = 3;

    /// Creates a block mapping `c_in` channels to `c_out` with the given
    /// stride on its first convolution. A projection shortcut is inserted
    /// whenever the stride is not 1 or the channel count changes.
    ///
    /// # Panics
    ///
    /// Panics if any channel count or the stride is zero.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        stride: usize,
        hw: &HardwareConfig,
        noise_base: u64,
        init_rng: &mut R,
    ) -> Self {
        let name = name.into();
        let conv1 = QConv2d::new(
            format!("{name}.conv1"),
            c_in,
            c_out,
            3,
            stride,
            1,
            hw,
            InputKind::Unit,
            noise_base,
            init_rng,
        );
        let bn1 = BatchNorm2d::new(format!("{name}.bn1"), c_out);
        let conv2 = QConv2d::new(
            format!("{name}.conv2"),
            c_out,
            c_out,
            3,
            1,
            1,
            hw,
            InputKind::Unit,
            noise_base + 1,
            init_rng,
        );
        let bn2 = BatchNorm2d::new(format!("{name}.bn2"), c_out);
        let down = (stride != 1 || c_in != c_out).then(|| {
            (
                QConv2d::new(
                    format!("{name}.down"),
                    c_in,
                    c_out,
                    1,
                    stride,
                    0,
                    hw,
                    InputKind::Unit,
                    noise_base + 2,
                    init_rng,
                ),
                BatchNorm2d::new(format!("{name}.bn_down"), c_out),
            )
        });
        BasicBlock {
            act1: ClippedRelu::new(format!("{name}.act1")),
            act2: ClippedRelu::new(format!("{name}.act2")),
            name,
            conv1,
            bn1,
            conv2,
            bn2,
            down,
        }
    }

    /// Whether the block carries a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.down.is_some()
    }

    /// Visits the block's quantized convolutions (probing, reseeding).
    pub fn for_each_qconv(&mut self, f: &mut dyn FnMut(&mut QConv2d)) {
        f(&mut self.conv1);
        f(&mut self.conv2);
        if let Some((c, _)) = &mut self.down {
            f(c);
        }
    }

    /// Visits the block's batch-norm layers.
    pub fn for_each_bn(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.bn1);
        f(&mut self.bn2);
        if let Some((_, b)) = &mut self.down {
            f(b);
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let mut main = self.conv1.forward(ctx, input, mode);
        main = self.bn1.forward(ctx, &main, mode);
        main = self.act1.forward(ctx, &main, mode);
        main = self.conv2.forward(ctx, &main, mode);
        main = self.bn2.forward(ctx, &main, mode);
        let skip = match &mut self.down {
            Some((conv, bn)) => {
                let s = conv.forward(ctx, input, mode);
                bn.forward(ctx, &s, mode)
            }
            None => input.clone(),
        };
        main.add_assign(&skip);
        self.act2.forward(ctx, &main, mode)
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let g = self.act2.backward(ctx, grad_output);
        // Main path.
        let mut gm = self.bn2.backward(ctx, &g);
        gm = self.conv2.backward(ctx, &gm);
        gm = self.act1.backward(ctx, &gm);
        gm = self.bn1.backward(ctx, &gm);
        gm = self.conv1.backward(ctx, &gm);
        // Skip path.
        let gs = match &mut self.down {
            Some((conv, bn)) => {
                let gd = bn.backward(ctx, &g);
                conv.backward(ctx, &gd)
            }
            None => g,
        };
        gm.add(&gs)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.for_each_param(f);
        self.bn1.for_each_param(f);
        self.conv2.for_each_param(f);
        self.bn2.for_each_param(f);
        if let Some((c, b)) = &mut self.down {
            c.for_each_param(f);
            b.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.conv1.for_each_state(f);
        self.bn1.for_each_state(f);
        self.conv2.for_each_state(f);
        self.bn2.for_each_state(f);
        if let Some((c, b)) = &mut self.down {
            c.for_each_state(f);
            b.for_each_state(f);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::rng;

    #[test]
    fn identity_block_shape_and_projection_block_shape() {
        let mut r = rng::seeded(0);
        let hw = HardwareConfig::fp32();
        let mut idb = BasicBlock::new("b", 8, 8, 1, &hw, 0, &mut r);
        assert!(!idb.has_projection());
        let y = idb.forward(
            &ExecCtx::serial(),
            &Tensor::zeros(&[2, 8, 6, 6]),
            Mode::Eval,
        );
        assert_eq!(y.dims(), &[2, 8, 6, 6]);

        let mut pb = BasicBlock::new("b2", 8, 16, 2, &hw, 3, &mut r);
        assert!(pb.has_projection());
        let y = pb.forward(
            &ExecCtx::serial(),
            &Tensor::zeros(&[2, 8, 6, 6]),
            Mode::Eval,
        );
        assert_eq!(y.dims(), &[2, 16, 3, 3]);
    }

    #[test]
    fn output_bounded_by_relu1() {
        let mut r = rng::seeded(1);
        let hw = HardwareConfig::fp32();
        let mut blk = BasicBlock::new("b", 4, 4, 1, &hw, 0, &mut r);
        let mut x = Tensor::zeros(&[2, 4, 5, 5]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y = blk.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert!(y.min() >= 0.0 && y.max() <= 1.0);
    }

    #[test]
    fn backward_produces_input_gradient_both_paths() {
        let mut r = rng::seeded(2);
        let hw = HardwareConfig::fp32();
        let mut blk = BasicBlock::new("b", 4, 8, 2, &hw, 0, &mut r);
        let mut x = Tensor::zeros(&[1, 4, 6, 6]);
        rng::fill_uniform(&mut x, 0.2, 0.8, &mut r);
        let y = blk.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = blk.backward(&ExecCtx::serial(), &Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.max_abs() > 0.0);
        // All three convolutions received gradient.
        let mut grads = Vec::new();
        blk.for_each_qconv(&mut |c| grads.push(c.weight().grad.max_abs()));
        assert_eq!(grads.len(), 3);
        assert!(grads.iter().all(|&g| g > 0.0), "{grads:?}");
    }

    #[test]
    fn gradcheck_through_block() {
        // Finite-difference check of dL/dx through the whole block (batch
        // statistics make this a joint function; keep the batch tiny).
        let mut r = rng::seeded(3);
        let hw = HardwareConfig::fp32();
        let mut x = Tensor::zeros(&[2, 2, 4, 4]);
        rng::fill_uniform(&mut x, 0.25, 0.75, &mut r);

        let loss_of = |x_: &Tensor| -> f32 {
            let mut r2 = rng::seeded(3);
            rng::fill_uniform(&mut Tensor::zeros(&[2, 2, 4, 4]), 0.0, 1.0, &mut r2); // burn the same init draws
            let mut blk = BasicBlock::new("b", 2, 2, 1, &hw, 0, &mut r2);
            let y = blk.forward(&ExecCtx::serial(), x_, Mode::Train);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };

        let mut r2 = rng::seeded(3);
        rng::fill_uniform(&mut Tensor::zeros(&[2, 2, 4, 4]), 0.0, 1.0, &mut r2);
        let mut blk = BasicBlock::new("b", 2, 2, 1, &hw, 0, &mut r2);
        let y = blk.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = blk.backward(&ExecCtx::serial(), &y);

        let eps = 1e-2;
        let mut checked = 0;
        for i in [3usize, 20, 40] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss_of(&xp) - loss_of(&xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            // ReLU-1 masks make some coordinates non-smooth; only check
            // coordinates with meaningful agreement scale.
            if num.abs() > 1e-3 || ana.abs() > 1e-3 {
                assert!(
                    (num - ana).abs() < 0.15 * (1.0 + ana.abs()),
                    "dx[{i}]: {num} vs {ana}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no checkable coordinates");
    }

    #[test]
    fn state_names_are_hierarchical() {
        let mut r = rng::seeded(4);
        let hw = HardwareConfig::fp32();
        let mut blk = BasicBlock::new("s1.b0", 4, 8, 2, &hw, 0, &mut r);
        let mut names = Vec::new();
        blk.for_each_state(&mut |n, _| names.push(n.to_string()));
        assert!(names.contains(&"s1.b0.conv1.weight".to_string()));
        assert!(names.contains(&"s1.b0.bn2.running_var".to_string()));
        assert!(names.contains(&"s1.b0.down.weight".to_string()));
    }
}
