//! The model seam: [`ModelKind`], [`AmsModel`] and [`ModelSpec`].
//!
//! The experiment harness used to hardcode [`crate::ResNetMini`] at every
//! build site. [`ModelSpec`] packages what the harness actually needs —
//! an architecture constructor, the checkpoint key-space, the Table-2
//! freeze-policy set, and the input shape — behind one dispatch point, and
//! [`AmsModel`] is the object-safe capability surface every network in the
//! zoo implements (noise-stream checkpointing, probes, freezing, energy
//! accounting) on top of [`ams_nn::Layer`].
//!
//! # Example
//!
//! ```
//! use ams_models::{HardwareConfig, LeNet5Config, ModelSpec};
//! use ams_nn::Mode;
//! use ams_tensor::{ExecCtx, Tensor};
//!
//! let spec = ModelSpec::LeNet5(LeNet5Config::tiny());
//! let mut net = spec.build(&HardwareConfig::fp32());
//! let (c, s) = spec.input_shape();
//! let s = s.expect("LeNet5 has a fixed input size");
//! let y = net.forward(&ExecCtx::serial(), &Tensor::zeros(&[2, c, s, s]), Mode::Eval);
//! assert_eq!(y.dims(), &[2, spec.classes()]);
//! ```

use std::sync::Arc;

use ams_nn::Layer;
use ams_tensor::{rng::RngState, ExecCtx};
use serde::{Deserialize, Serialize};

use crate::config::HardwareConfig;
use crate::freeze::{CheckpointKeySpace, FreezePolicy};
use crate::frozen::SharedModelWeights;
use crate::lenet::{LeNet5, LeNet5Config};
use crate::resnet::{ResNetMini, ResNetMiniConfig};
use crate::surgery::EnergyReport;

/// Which network topology an artifact (checkpoint, journal, metric key)
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum ModelKind {
    /// The three-stage residual substrate network (DESIGN.md §3).
    #[default]
    ResNetMini,
    /// The LeNet-5-shaped plain conv net (two 5×5 conv/pool blocks).
    LeNet5,
}

impl ModelKind {
    /// Short identifier used in artifact names, CLI flags and metric keys.
    pub fn key(&self) -> &'static str {
        match self {
            ModelKind::ResNetMini => "resnet-mini",
            ModelKind::LeNet5 => "lenet5",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.key())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "resnet-mini" | "resnet_mini" | "resnet" => Ok(ModelKind::ResNetMini),
            "lenet5" | "lenet-5" | "lenet" => Ok(ModelKind::LeNet5),
            other => Err(format!("unknown model `{other}`; use resnet-mini|lenet5")),
        }
    }
}

// Hand-written so checkpoints/train states serialized before the model
// seam existed (no `model` field) deserialize as ResNetMini — the vendored
// serde facade's equivalent of `#[serde(default)]`.
impl serde::Deserialize for ModelKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) if s == "ResNetMini" => Ok(ModelKind::ResNetMini),
            serde::Value::Str(s) if s == "LeNet5" => Ok(ModelKind::LeNet5),
            serde::Value::Str(other) => Err(serde::DeError::unknown_variant("ModelKind", other)),
            _ => Err(serde::DeError::expected("enum ModelKind")),
        }
    }

    fn missing() -> Option<Self> {
        Some(ModelKind::ResNetMini)
    }
}

/// The capability surface the experiment harness needs from a network,
/// over and above [`Layer`]: AMS noise-stream checkpointing (crash-safe
/// resume, DESIGN.md §9), activation probes (Fig. 6), Table-2 freezing,
/// and Eq. 3–4 energy accounting.
///
/// Implementations delegate to their inherent methods; `&mut dyn AmsModel`
/// upcasts to `&mut dyn Layer` wherever checkpoints or the optimizer need
/// the parameter tree.
pub trait AmsModel: Layer {
    /// Which topology this is (keys artifacts and metric names).
    fn kind(&self) -> ModelKind;

    /// The hardware configuration the network was built with.
    fn hardware(&self) -> &HardwareConfig;

    /// Reseeds every layer's AMS noise stream for an independent pass.
    fn reseed_noise(&mut self, pass_seed: u64);

    /// Snapshots every layer's noise-stream cursor in forward order.
    fn noise_states(&mut self) -> Vec<RngState>;

    /// Repositions every layer's noise stream at the captured cursors.
    ///
    /// # Panics
    ///
    /// Panics if `states` was captured from a different architecture
    /// (wrong stream count).
    fn restore_noise_states(&mut self, states: &[RngState]);

    /// Enables or disables output-mean probes on every convolution.
    fn set_probes(&mut self, enabled: bool);

    /// Collects `(layer_name, mean)` for every probed convolution with
    /// observed data, in forward order.
    fn probe_means(&mut self) -> Vec<(String, f32)>;

    /// Applies a Table 2 freezing policy to all parameters.
    fn apply_freeze(&mut self, policy: FreezePolicy);

    /// Prices one inference at the given square input size (Eq. 3–4).
    fn energy_report(&mut self, ctx: &ExecCtx, image_size: usize) -> EnergyReport;

    /// Per-layer `(name, N_tot, σ)` of the injected AMS error.
    fn error_budget(&mut self) -> Vec<(String, usize, Option<f32>)>;

    /// Quantizes every layer's shadow weights once into immutable
    /// eval-ready form, installs them on this network, and returns the
    /// bundle so worker replicas can [`AmsModel::adopt_shared_weights`].
    /// Eval forwards then skip per-call weight quantization and are
    /// bit-identical to the unfrozen path (deterministic quantizers).
    fn freeze_shared_weights(&mut self, ctx: &ExecCtx) -> SharedModelWeights;

    /// Installs frozen weights produced by a twin network's
    /// [`AmsModel::freeze_shared_weights`] — replicas share one buffer per
    /// layer through the `Arc`s.
    ///
    /// # Panics
    ///
    /// Panics if the bundle came from a different architecture (wrong
    /// layer count or shapes).
    fn adopt_shared_weights(&mut self, shared: &SharedModelWeights);

    /// Sets (or clears) per-request noise seeds on every injecting layer:
    /// image `i` of the next eval batch draws the exact noise an offline
    /// `reseed_noise(seeds[i])` + batch-1 forward would, making coalesced
    /// serving batches bit-identical to offline evaluation.
    fn set_request_noise_seeds(&mut self, seeds: Option<Arc<Vec<u64>>>);
}

/// A buildable model architecture: everything the runner needs to work
/// with a network without naming its concrete type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// [`ResNetMini`] with the given architecture.
    ResNetMini(ResNetMiniConfig),
    /// [`LeNet5`] with the given architecture.
    LeNet5(LeNet5Config),
}

impl ModelSpec {
    /// The topology tag (artifact/metric key component).
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelSpec::ResNetMini(_) => ModelKind::ResNetMini,
            ModelSpec::LeNet5(_) => ModelKind::LeNet5,
        }
    }

    /// Constructs the network for this architecture under `hw` (with the
    /// hardware tagged by [`ModelSpec::kind`], so layer metric keys carry
    /// the scenario).
    pub fn build(&self, hw: &HardwareConfig) -> Box<dyn AmsModel> {
        let hw = hw.with_model_tag(self.kind());
        match self {
            ModelSpec::ResNetMini(arch) => Box::new(ResNetMini::new(arch, &hw)),
            ModelSpec::LeNet5(arch) => Box::new(LeNet5::new(arch, &hw)),
        }
    }

    /// `(channels, square_size)` of the input images the net expects;
    /// `None` when the topology accepts any size its strides survive
    /// (ResNetMini's global average pool absorbs the spatial dims).
    pub fn input_shape(&self) -> (usize, Option<usize>) {
        match self {
            ModelSpec::ResNetMini(arch) => (arch.in_channels, None),
            ModelSpec::LeNet5(arch) => (arch.in_channels, Some(arch.image_size)),
        }
    }

    /// Output classes.
    pub fn classes(&self) -> usize {
        match self {
            ModelSpec::ResNetMini(arch) => arch.classes,
            ModelSpec::LeNet5(arch) => arch.classes,
        }
    }

    /// Noise streams a resumable checkpoint must carry (convolutions plus
    /// the classifier).
    pub fn noise_stream_count(&self) -> usize {
        match self {
            ModelSpec::ResNetMini(arch) => arch.conv_layer_count() + 1,
            ModelSpec::LeNet5(_) => LeNet5Config::CONV_LAYERS + 1,
        }
    }

    /// How parameter names map onto Table-2 groups for this topology.
    pub fn key_space(&self) -> CheckpointKeySpace {
        // Both zoo members name their classifier `fc.*` and their
        // batch-norm affines `*.gamma` / `*.beta`.
        CheckpointKeySpace::default()
    }

    /// The Table-2 freeze policies meaningful for this topology.
    pub fn freeze_policies(&self) -> &'static [FreezePolicy] {
        &FreezePolicy::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_nn::{Checkpoint, Mode};
    use ams_tensor::{ExecCtx, Tensor};

    #[test]
    fn kind_keys_and_parsing() {
        assert_eq!(ModelKind::ResNetMini.key(), "resnet-mini");
        assert_eq!(ModelKind::LeNet5.key(), "lenet5");
        assert_eq!(
            "resnet-mini".parse::<ModelKind>(),
            Ok(ModelKind::ResNetMini)
        );
        assert_eq!("lenet5".parse::<ModelKind>(), Ok(ModelKind::LeNet5));
        assert!("vgg".parse::<ModelKind>().is_err());
    }

    #[test]
    fn model_kind_missing_defaults_to_resnet_mini() {
        // Pre-seam serialized maps lack the field entirely.
        let got: ModelKind =
            serde::field(&[], "model").expect("missing field must default, not error");
        assert_eq!(got, ModelKind::ResNetMini);
    }

    #[test]
    fn specs_build_matching_networks() {
        for spec in [
            ModelSpec::ResNetMini(ResNetMiniConfig::tiny()),
            ModelSpec::LeNet5(LeNet5Config::tiny()),
        ] {
            let mut net = spec.build(&HardwareConfig::fp32());
            assert_eq!(net.kind(), spec.kind());
            assert_eq!(net.hardware().model_tag, spec.kind());
            let (c, s) = spec.input_shape();
            let s = s.unwrap_or(8);
            let y = net.forward(
                &ExecCtx::serial(),
                &Tensor::zeros(&[2, c, s, s]),
                Mode::Eval,
            );
            assert_eq!(y.dims(), &[2, spec.classes()]);
            assert_eq!(net.noise_states().len(), spec.noise_stream_count());
        }
    }

    #[test]
    fn spec_round_trips_through_serde() {
        for spec in [
            ModelSpec::ResNetMini(ResNetMiniConfig::tiny()),
            ModelSpec::LeNet5(LeNet5Config::quick()),
        ] {
            let v = serde::Serialize::to_value(&spec);
            let back = <ModelSpec as serde::Deserialize>::from_value(&v).expect("round trip");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn checkpoints_transfer_between_boxed_and_concrete() {
        // A checkpoint captured through the trait object must load into a
        // concrete net of the same architecture (same key-space).
        let spec = ModelSpec::LeNet5(LeNet5Config::tiny());
        let mut boxed = spec.build(&HardwareConfig::fp32());
        let ckpt = Checkpoint::from_layer(&mut *boxed);
        let mut concrete = LeNet5::new(&LeNet5Config::tiny(), &HardwareConfig::fp32());
        ckpt.load_into(&mut concrete).expect("same key-space");
    }
}
