//! Read-only split of the quantized layer weights for serving.
//!
//! Every `QConv2d`/`QLinear` forward re-quantizes its shadow FP32 weights
//! — correct for training (the shadows move every step) but pure per-call
//! overhead for a serving replica whose weights never change. This module
//! splits that state: [`FrozenLayerWeights`] holds one layer's quantized
//! eval-ready weights (the f32 weight matrix plus, when the widths allow,
//! the pre-coded i8 form), and [`SharedModelWeights`] collects the whole
//! network's layers behind `Arc`s so N worker replicas share one copy.
//!
//! Because the quantizers are deterministic, a frozen forward is
//! bit-identical to the per-forward quantization it replaces; the layer
//! tests pin that equivalence on both the f32 and i8 kernels.

use std::sync::Arc;

use ams_quant::QuantizedI8;
use ams_tensor::{Density, Tensor};

/// One layer's immutable eval-ready weights.
///
/// `wmat` is the quantized (and, under a mismatch overlay, realized) f32
/// weight matrix in the kernels' layout: `[c_out, c_in·k²]` for a
/// convolution, `[out_features, in_features]` for a linear layer. `i8` is
/// the pre-coded integer form when both operand widths fit 8 bits and no
/// f32 perturbation applies (the same gate the live i8 dispatch uses).
#[derive(Debug)]
pub struct FrozenLayerWeights {
    /// Quantized f32 weight matrix, kernel layout.
    pub wmat: Tensor,
    /// Sparsity summary the f32 conv kernel uses for skip decisions.
    pub density: Density,
    /// Pre-coded i8 weights, when representable.
    pub i8: Option<QuantizedI8>,
}

/// A whole network's frozen weights: one [`FrozenLayerWeights`] per
/// quantized convolution (forward order) plus the classifier. Cheap to
/// clone — workers share the underlying buffers through the `Arc`s.
#[derive(Debug, Clone)]
pub struct SharedModelWeights {
    /// Per-convolution frozen weights, in `for_each_qconv` order.
    pub convs: Vec<Arc<FrozenLayerWeights>>,
    /// The classifier's frozen weights.
    pub fc: Arc<FrozenLayerWeights>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::resnet::{ResNetMini, ResNetMiniConfig};
    use ams_core::vmac::Vmac;
    use ams_nn::{Layer, Mode};
    use ams_quant::QuantConfig;
    use ams_tensor::{rng, ExecCtx, KernelDispatch, Tensor};

    fn ams_hw() -> HardwareConfig {
        HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 8.0))
    }

    fn images(n: usize, seed: u64) -> Tensor {
        let mut t = Tensor::zeros(&[n, 3, 8, 8]);
        let mut r = rng::seeded(seed);
        rng::fill_uniform(&mut t, 0.0, 1.0, &mut r);
        t
    }

    #[test]
    fn frozen_eval_is_bitwise_identical_to_unfrozen() {
        // Same init seed → identical twins; freezing one must not change a
        // single bit of its eval output, on the f32 and the i8 kernels.
        let arch = ResNetMiniConfig::tiny();
        for ctx in [
            ExecCtx::serial(),
            ExecCtx::serial().with_kernel(KernelDispatch::I8),
        ] {
            let mut plain = ResNetMini::new(&arch, &ams_hw());
            let mut frozen = ResNetMini::new(&arch, &ams_hw());
            frozen.freeze_shared_weights(&ctx);
            let x = images(2, 5);
            plain.reseed_noise(99);
            frozen.reseed_noise(99);
            let a = plain.forward(&ctx, &x, Mode::Eval);
            let b = frozen.forward(&ctx, &x, Mode::Eval);
            assert_eq!(a, b, "kernel {:?}", ctx.kernel());
        }
    }

    #[test]
    fn adopted_replicas_share_weights_and_match_the_freezer() {
        let arch = ResNetMiniConfig::tiny();
        let ctx = ExecCtx::serial();
        let mut template = ResNetMini::new(&arch, &ams_hw());
        let shared = template.freeze_shared_weights(&ctx);
        let mut replica = ResNetMini::new(&arch, &ams_hw());
        replica.adopt_shared_weights(&shared);
        let x = images(2, 6);
        template.reseed_noise(7);
        replica.reseed_noise(7);
        assert_eq!(
            template.forward(&ctx, &x, Mode::Eval),
            replica.forward(&ctx, &x, Mode::Eval),
        );
    }

    #[test]
    fn per_request_seeds_match_offline_batch1_eval() {
        // The serve contract end to end at model scale: a coalesced batch
        // with per-request seeds is bitwise what per-request offline
        // reseed_noise + batch-1 forwards produce, frozen or not, on both
        // kernels.
        let arch = ResNetMiniConfig::tiny();
        let seeds = vec![101u64, 202, 303];
        let x = images(seeds.len(), 8);
        for ctx in [
            ExecCtx::serial(),
            ExecCtx::serial().with_kernel(KernelDispatch::I8),
        ] {
            let mut server = ResNetMini::new(&arch, &ams_hw());
            server.freeze_shared_weights(&ctx);
            server.set_request_noise_seeds(Some(Arc::new(seeds.clone())));
            let batched = server.forward(&ctx, &x, Mode::Eval);
            let classes = batched.dims()[1];

            let mut offline = ResNetMini::new(&arch, &ams_hw());
            for (i, &seed) in seeds.iter().enumerate() {
                let mut one = Tensor::zeros(&[1, 3, 8, 8]);
                let per_image = one.len();
                one.data_mut()
                    .copy_from_slice(&x.data()[i * per_image..(i + 1) * per_image]);
                offline.reseed_noise(seed);
                let y = offline.forward(&ctx, &one, Mode::Eval);
                assert_eq!(
                    y.data(),
                    &batched.data()[i * classes..(i + 1) * classes],
                    "request {i}, kernel {:?}",
                    ctx.kernel()
                );
            }
        }
    }

    #[test]
    fn training_ignores_frozen_weights() {
        let arch = ResNetMiniConfig::tiny();
        let ctx = ExecCtx::serial();
        let mut plain = ResNetMini::new(&arch, &ams_hw());
        let mut frozen = ResNetMini::new(&arch, &ams_hw());
        frozen.freeze_shared_weights(&ctx);
        let x = images(2, 9);
        assert_eq!(
            plain.forward(&ctx, &x, Mode::Train),
            frozen.forward(&ctx, &x, Mode::Train),
        );
    }

    #[test]
    #[should_panic(expected = "different architecture")]
    fn adopting_mismatched_weights_panics() {
        let ctx = ExecCtx::serial();
        let mut small = ResNetMini::new(&ResNetMiniConfig::tiny(), &ams_hw());
        let shared = small.freeze_shared_weights(&ctx);
        let mut big = ResNetMini::new(&ResNetMiniConfig::quick(), &ams_hw());
        big.adopt_shared_weights(&shared);
    }
}
