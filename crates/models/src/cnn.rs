//! A plain (non-residual) CNN baseline.
//!
//! The AMS papers the introduction surveys mostly evaluate small
//! feed-forward CNNs on MNIST/CIFAR-class tasks; this builder provides
//! that baseline shape — `[conv → BN → ReLU1 → pool]×N → FC` — on the
//! same quantized/AMS layer stack as [`crate::ResNetMini`], so experiments
//! can compare residual vs plain topologies under identical hardware.

use ams_nn::{BatchNorm2d, ClippedRelu, Flatten, Layer, MaxPool2d, Mode, Param, Sequential};
use ams_tensor::{rng, ExecCtx, Tensor};
use serde::{Deserialize, Serialize};

use crate::config::{HardwareConfig, InputKind};
use crate::qconv::QConv2d;
use crate::qlinear::QLinear;

/// Architecture of a [`PlainCnn`].
///
/// # Example
///
/// ```
/// use ams_models::{HardwareConfig, PlainCnn, PlainCnnConfig};
/// use ams_nn::{Layer, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let arch = PlainCnnConfig { image_size: 16, ..PlainCnnConfig::default() };
/// let mut net = PlainCnn::new(&arch, &HardwareConfig::fp32());
/// let y = net.forward(&ExecCtx::serial(), &Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, arch.classes]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlainCnnConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Output classes.
    pub classes: usize,
    /// Square input size in pixels (needed to size the classifier).
    pub image_size: usize,
    /// Channel widths of the conv blocks; each block halves the spatial
    /// size with a 2×2 max pool.
    pub widths: Vec<usize>,
    /// Weight-initialization seed.
    pub init_seed: u64,
}

impl Default for PlainCnnConfig {
    /// Two blocks of 8 and 16 channels on 16×16 inputs, 16 classes.
    fn default() -> Self {
        PlainCnnConfig {
            in_channels: 3,
            classes: 16,
            image_size: 16,
            widths: vec![8, 16],
            init_seed: 42,
        }
    }
}

impl PlainCnnConfig {
    /// Spatial size after all pooling stages.
    ///
    /// # Panics
    ///
    /// Panics if the image does not survive the pools (size must be
    /// divisible by `2^blocks` and stay ≥ 1).
    pub fn final_spatial(&self) -> usize {
        let mut s = self.image_size;
        for _ in &self.widths {
            assert!(
                s >= 2,
                "PlainCnnConfig: image too small for {} pools",
                self.widths.len()
            );
            s /= 2;
        }
        s.max(1)
    }
}

/// The plain CNN baseline: a [`Sequential`] of quantized blocks.
#[derive(Debug)]
pub struct PlainCnn {
    net: Sequential,
    config: PlainCnnConfig,
}

impl PlainCnn {
    /// Builds the network for the given architecture and hardware.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or the image is too small for the
    /// pooling stages.
    pub fn new(arch: &PlainCnnConfig, hw: &HardwareConfig) -> Self {
        assert!(!arch.widths.is_empty(), "PlainCnn: need at least one block");
        let final_spatial = arch.final_spatial();
        let mut init = rng::seeded(arch.init_seed);
        let mut net = Sequential::new("plain_cnn");
        let mut c_in = arch.in_channels;
        for (bi, &width) in arch.widths.iter().enumerate() {
            let input_kind = if bi == 0 {
                InputKind::SignedRescaled
            } else {
                InputKind::Unit
            };
            net.push(QConv2d::new(
                format!("b{bi}.conv"),
                c_in,
                width,
                3,
                1,
                1,
                hw,
                input_kind,
                bi as u64,
                &mut init,
            ));
            net.push(BatchNorm2d::new(format!("b{bi}.bn"), width));
            net.push(ClippedRelu::new(format!("b{bi}.act")));
            net.push(MaxPool2d::new(format!("b{bi}.pool"), 2));
            c_in = width;
        }
        net.push(Flatten::new("flatten"));
        let fc_in = c_in * final_spatial * final_spatial;
        net.push(QLinear::new(
            "fc",
            fc_in,
            arch.classes,
            hw,
            true,
            1000,
            &mut init,
        ));
        PlainCnn {
            net,
            config: arch.clone(),
        }
    }

    /// The architecture this network was built from.
    pub fn config(&self) -> &PlainCnnConfig {
        &self.config
    }
}

impl Layer for PlainCnn {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        self.net.forward(ctx, input, mode)
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        self.net.backward(ctx, grad_output)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.for_each_param(f);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.net.for_each_state(f);
    }

    fn name(&self) -> &str {
        self.net.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::vmac::Vmac;
    use ams_quant::QuantConfig;

    #[test]
    fn shapes_and_param_names() {
        let arch = PlainCnnConfig {
            image_size: 8,
            widths: vec![4, 8],
            classes: 4,
            ..Default::default()
        };
        let mut net = PlainCnn::new(&arch, &HardwareConfig::fp32());
        let y = net.forward(
            &ExecCtx::serial(),
            &Tensor::zeros(&[2, 3, 8, 8]),
            Mode::Eval,
        );
        assert_eq!(y.dims(), &[2, 4]);
        let mut names = Vec::new();
        net.for_each_param(&mut |p| names.push(p.name().to_string()));
        assert!(names.contains(&"b0.conv.weight".to_string()));
        assert!(names.contains(&"b1.bn.gamma".to_string()));
        assert!(names.contains(&"fc.bias".to_string()));
    }

    #[test]
    fn trains_a_step_under_ams_hardware() {
        let arch = PlainCnnConfig {
            image_size: 8,
            widths: vec![4],
            classes: 4,
            ..Default::default()
        };
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 7.0));
        let mut net = PlainCnn::new(&arch, &hw);
        let mut r = rng::seeded(1);
        let mut x = Tensor::zeros(&[4, 3, 8, 8]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y = net.forward(&ExecCtx::serial(), &x, Mode::Train);
        let (loss, grad) = ams_nn::softmax_cross_entropy(&y, &[0, 1, 2, 3]);
        assert!(loss.is_finite());
        net.backward(&ExecCtx::serial(), &grad);
        ams_nn::Sgd::new(0.01).step(&mut net);
    }

    #[test]
    fn checkpoint_round_trip() {
        use ams_nn::Checkpoint;
        let arch = PlainCnnConfig {
            image_size: 8,
            widths: vec![4],
            classes: 4,
            ..Default::default()
        };
        let mut a = PlainCnn::new(&arch, &HardwareConfig::fp32());
        let ckpt = Checkpoint::from_layer(&mut a);
        let arch_b = PlainCnnConfig {
            init_seed: 43,
            ..arch
        };
        let mut b = PlainCnn::new(&arch_b, &HardwareConfig::fp32());
        ckpt.load_into(&mut b).expect("same structure");
        let x = Tensor::full(&[1, 3, 8, 8], 0.3);
        assert_eq!(
            a.forward(&ExecCtx::serial(), &x, Mode::Eval),
            b.forward(&ExecCtx::serial(), &x, Mode::Eval)
        );
    }

    #[test]
    fn rejects_undersized_images() {
        let arch = PlainCnnConfig {
            image_size: 2,
            widths: vec![4, 8, 16],
            ..Default::default()
        };
        let result = std::panic::catch_unwind(|| arch.final_spatial());
        assert!(result.is_err());
    }
}
