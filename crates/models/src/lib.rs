//! Networks with DoReFa quantization and AMS error-injection surgery.
//!
//! This crate assembles the substrates (`ams-nn`, `ams-quant`, `ams-core`)
//! into the models the paper experiments on:
//!
//! * [`QConv2d`] / [`QLinear`] — quantized layers that replicate the
//!   paper's Fig. 3 exactly: the input activations are quantized to `B_X`
//!   bits, the shadow FP32 weights are DoReFa-quantized to `B_W` bits
//!   every forward pass (gradients routed back through the straight-through
//!   estimator), and the AMS error of Eq. 2 is added to the layer output —
//!   in the forward pass only.
//! * [`ResNetMini`] — the ResNet-50 stand-in: conv stem, three stages of
//!   residual [`BasicBlock`]s with batch norm, global average pooling and
//!   a fully-connected classifier. Built from a [`HardwareConfig`], the
//!   same architecture serves as the FP32 baseline (identity quantizers),
//!   the quantized digital baseline (Table 1), and the AMS network
//!   (Figs. 4–6, Table 2).
//! * [`LeNet5`] — a small LeNet-style conv net; with [`ResNetMini`] it
//!   forms the model zoo behind [`ModelSpec`], the topology-agnostic seam
//!   the experiment runner builds against.
//! * [`FreezePolicy`] — the Table 2 selective-freezing study.
//! * Activation probes — per-layer output means across a dataset (Fig. 6).
//!
//! # Example
//!
//! ```
//! use ams_models::{HardwareConfig, ResNetMini, ResNetMiniConfig};
//! use ams_nn::{Layer, Mode};
//! use ams_tensor::{ExecCtx, Tensor};
//!
//! let arch = ResNetMiniConfig::tiny();
//! let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
//! let x = Tensor::zeros(&[2, 3, 8, 8]);
//! let logits = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
//! assert_eq!(logits.dims(), &[2, arch.classes]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod cnn;
mod config;
mod freeze;
mod frozen;
mod lenet;
mod qconv;
mod qlinear;
mod resnet;
mod spec;
pub mod surgery;

pub use ams_core::error_model::{ErrorModel, ErrorModelConfig, ErrorModelKind};
pub use block::BasicBlock;
pub use cnn::{PlainCnn, PlainCnnConfig};
pub use config::{HardwareConfig, InputKind};
pub use freeze::{CheckpointKeySpace, FreezePolicy};
pub use frozen::{FrozenLayerWeights, SharedModelWeights};
pub use lenet::{LeNet5, LeNet5Config};
pub use qconv::QConv2d;
pub use qlinear::QLinear;
pub use resnet::{ResNetMini, ResNetMiniConfig};
pub use spec::{AmsModel, ModelKind, ModelSpec};
pub use surgery::{fold_bn_into_conv, EnergyReport, LayerEnergy};
