//! Quantized fully-connected layer with AMS error injection.

use std::sync::Arc;

use ams_core::error_model::ErrorModel;
use ams_core::vmac_sim::VmacSimulator;
use ams_nn::functional::{linear_backward, linear_forward, linear_forward_i8, LinearCache};
use ams_nn::{Layer, Mode, Param};
use ams_quant::{build_quantizer, Quantizer};
use ams_tensor::{noise_stream_seed, rng, ExecCtx, KernelDispatch, Tensor};
use rand::Rng;

use crate::config::HardwareConfig;
use crate::frozen::FrozenLayerWeights;

/// A fully-connected layer with DoReFa weight/activation quantization and
/// AMS error injection — the classifier head of the paper's networks.
///
/// As the network's *last layer* it follows the paper's special rule
/// (§2): AMS error is injected at evaluation time but **not** during
/// training (injecting there "led to a loss of the network's ability to
/// learn"), unless [`HardwareConfig::inject_last_layer_train`] re-enables
/// it for the ablation. The bias is added digitally and stays
/// full-precision ("biases can be added digitally at little extra energy
/// cost").
///
/// # Example
///
/// ```
/// use ams_models::{HardwareConfig, QLinear};
/// use ams_nn::{Layer, Mode};
/// use ams_tensor::{rng, noise_stream_seed, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut fc = QLinear::new("fc", 16, 10, &HardwareConfig::fp32(), true, 9, &mut r);
/// let y = fc.forward(&ExecCtx::serial(), &Tensor::zeros(&[4, 16]), Mode::Eval);
/// assert_eq!(y.dims(), &[4, 10]);
/// ```
#[derive(Debug)]
pub struct QLinear {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    quantizer: Box<dyn Quantizer>,
    is_last: bool,
    hw: HardwareConfig,
    layer_index: u64,
    model: Box<dyn ErrorModel>,
    cache: Option<LinearCache>,
    ste_scale: Option<Tensor>,
    frozen: Option<Arc<FrozenLayerWeights>>,
    request_seeds: Option<(Arc<Vec<u64>>, u64)>,
}

impl QLinear {
    /// Creates a quantized fully-connected layer.
    ///
    /// Set `is_last` for the network's final classifier so the paper's
    /// last-layer training rule applies.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        hw: &HardwareConfig,
        is_last: bool,
        layer_index: u64,
        init_rng: &mut R,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "QLinear: zero-sized configuration"
        );
        let name = name.into();
        let mut w = Tensor::zeros(&[out_features, in_features]);
        rng::fill_xavier(&mut w, in_features, out_features, init_rng);
        QLinear {
            weight: Param::new(format!("{name}.weight"), w),
            bias: Param::new_no_decay(format!("{name}.bias"), Tensor::zeros(&[out_features])),
            quantizer: build_quantizer(hw.quant, hw.scheme),
            is_last,
            hw: *hw,
            layer_index,
            model: hw.build_error_model(layer_index),
            name,
            in_features,
            out_features,
            cache: None,
            ste_scale: None,
            frozen: None,
            request_seeds: None,
        }
    }

    /// `N_tot` for the error model: the input feature count.
    pub fn n_tot(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the shadow FP32 weight.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The lumped-equivalent σ of the error this layer injects per output
    /// element (`None` when the configured error model injects nothing).
    pub fn error_sigma(&self) -> Option<f32> {
        self.model.sigma_hint(self.n_tot())
    }

    /// The live error model realizing this layer's hardware error budget.
    pub fn error_model(&self) -> &dyn ErrorModel {
        self.model.as_ref()
    }

    /// MAC operations per image (`out_features · in_features`).
    pub fn macs_per_image(&self) -> usize {
        self.out_features * self.in_features
    }

    /// Reseeds the AMS noise stream.
    pub fn reseed_noise(&mut self, pass_seed: u64, layer_index: u64) {
        self.model.reseed(noise_stream_seed(pass_seed, layer_index));
    }

    /// The current cursor of this layer's noise stream (checkpoint/resume).
    pub fn noise_state(&self) -> ams_tensor::rng::RngState {
        self.model
            .rng_cursors()
            .into_iter()
            .next()
            .expect("every error model owns one RNG stream")
    }

    /// Repositions the noise stream at a captured cursor.
    pub fn restore_noise_state(&mut self, state: &ams_tensor::rng::RngState) {
        self.model.restore(std::slice::from_ref(state));
    }

    /// Quantizes the shadow weights once into an immutable eval-ready
    /// form, installs it on this layer, and returns it for sharing with
    /// worker replicas (see [`QConv2d::freeze_eval_weights`]).
    ///
    /// [`QConv2d::freeze_eval_weights`]: crate::QConv2d::freeze_eval_weights
    pub fn freeze_eval_weights(&mut self, ctx: &ExecCtx) -> Arc<FrozenLayerWeights> {
        let ws = ctx.workspace();
        let qw = self.quantizer.quantize_weights_in(ws, &self.weight.value);
        let density = qw.density;
        ws.recycle(qw.ste_scale);
        let wmat = match self.model.realize_weights(&qw.values, self.layer_index) {
            Some(r) => {
                ws.recycle(qw.values);
                r
            }
            None => qw.values,
        };
        let i8 = (self.quantizer.weight_bits() <= 8 && !self.model.perturbs_weights()).then(|| {
            self.quantizer
                .quantize_weights_i8_in(ws, &self.weight.value)
        });
        let frozen = Arc::new(FrozenLayerWeights { wmat, density, i8 });
        self.frozen = Some(Arc::clone(&frozen));
        frozen
    }

    /// Installs frozen weights produced by a twin layer's
    /// [`QLinear::freeze_eval_weights`].
    ///
    /// # Panics
    ///
    /// Panics if the frozen matrix does not match this layer's shape.
    pub fn adopt_frozen_weights(&mut self, fw: Arc<FrozenLayerWeights>) {
        assert_eq!(
            fw.wmat.dims(),
            &[self.out_features, self.in_features],
            "QLinear {}: frozen weights from a different architecture",
            self.name
        );
        self.frozen = Some(fw);
    }

    /// Sets (or clears) the per-request noise seeds for the next eval
    /// forward (see [`QConv2d::set_request_noise_seeds`]).
    ///
    /// [`QConv2d::set_request_noise_seeds`]: crate::QConv2d::set_request_noise_seeds
    pub fn set_request_noise_seeds(&mut self, seeds: Option<Arc<Vec<u64>>>, noise_index: u64) {
        self.request_seeds = seeds.map(|s| (s, noise_index));
    }

    /// The §4 fine-grained path for the classifier: chunk the reduction
    /// into `N_mult`-sized analog partial sums and push each through the
    /// simulator's modeled conversion; the bias is added digitally
    /// afterwards. Each batch row is independent, so the simulation
    /// parallelizes over rows on the ExecCtx pool.
    fn forward_per_vmac(
        &self,
        ctx: &ExecCtx,
        xq: &Tensor,
        weight: &Tensor,
        sim: &VmacSimulator,
    ) -> Tensor {
        let n = xq.dims()[0];
        let n_mult = sim.vmac().n_mult;
        let (wd, xd, bd) = (weight.data(), xq.data(), self.bias.value.data());
        let (fin, fout) = (self.in_features, self.out_features);
        let n_chunks = fin.div_ceil(n_mult);
        let mut y = Tensor::zeros(&[n, fout]);
        ctx.for_each_chunk(y.data_mut(), fout, n * fout, |row, yrow| {
            let xrow = &xd[row * fin..(row + 1) * fin];
            for (o, yv) in yrow.iter_mut().enumerate() {
                let wrow = &wd[o * fin..(o + 1) * fin];
                let mut total = 0.0f64;
                let mut feedback = 0.0f64; // ΔΣ error memory
                let mut start = 0;
                let mut k = 0;
                while start < fin {
                    let end = (start + n_mult).min(fin);
                    let partial: f64 = wrow[start..end]
                        .iter()
                        .zip(&xrow[start..end])
                        .map(|(&a, &b)| f64::from(a) * f64::from(b))
                        .sum();
                    total += sim.convert_partial(partial, k, n_chunks, &mut feedback);
                    start = end;
                    k += 1;
                }
                *yv = total as f32 + bd[o];
            }
        });
        y
    }
}

impl Layer for QLinear {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.forward", self.name));
        let ws = ctx.workspace();
        // Retire last forward's pooled tensors before drawing new ones.
        if let Some(old) = self.cache.take() {
            ws.recycle(old.input);
            ws.recycle(old.weight);
        }
        if let Some(old) = self.ste_scale.take() {
            ws.recycle(old);
        }
        let xq = self.quantizer.quantize_activations_in(ws, input);
        let injecting = self.hw.injects(mode.is_train(), self.is_last);
        let operand_sim = if injecting && !mode.is_train() {
            self.model.operand_sim()
        } else {
            None
        };
        // The integer GEMM fast path (see QConv2d): eval-only, both widths
        // ≤ 8 bits, no f32 weight perturbation, not per-VMAC. The bias
        // stays digital/full-precision, fused into the integer epilogue.
        let use_i8 = ctx.kernel() == KernelDispatch::I8
            && !mode.is_train()
            && self.quantizer.weight_bits() <= 8
            && self.quantizer.activation_bits() <= 8
            && !self.model.perturbs_weights()
            && operand_sim.is_none();
        // Frozen eval weights (serving replicas): skip the per-forward
        // quantization entirely. Training ignores the frozen copy.
        let frozen = if mode.is_train() {
            None
        } else {
            self.frozen.clone()
        };
        let (mut y, cache) = if let Some(fw) = &frozen {
            let frozen_i8 = ctx.kernel() == KernelDispatch::I8
                && fw.i8.is_some()
                && self.quantizer.activation_bits() <= 8
                && operand_sim.is_none();
            if frozen_i8 {
                let qi = fw.i8.as_ref().expect("gated on i8.is_some()");
                if self.request_seeds.is_some() {
                    // Per-request reproducibility: the i8 activation
                    // re-coding scale is per tensor, so code each batch
                    // row alone, matching offline batch-1 evaluation
                    // (see QConv2d).
                    let n = xq.dims()[0];
                    let fin = self.in_features;
                    let mut one = ws.take_tensor(&[1, fin]);
                    let mut y_all = ws.take_tensor(&[n, self.out_features]);
                    for i in 0..n {
                        one.data_mut()
                            .copy_from_slice(&xq.data()[i * fin..(i + 1) * fin]);
                        let yi = linear_forward_i8(
                            ctx,
                            &one,
                            &qi.codes,
                            qi.scale,
                            Some(self.bias.value.data()),
                            self.out_features,
                        );
                        y_all.data_mut()[i * self.out_features..(i + 1) * self.out_features]
                            .copy_from_slice(yi.data());
                        ws.recycle(yi);
                    }
                    ws.recycle(one);
                    (y_all, None)
                } else {
                    let y = linear_forward_i8(
                        ctx,
                        &xq,
                        &qi.codes,
                        qi.scale,
                        Some(self.bias.value.data()),
                        self.out_features,
                    );
                    (y, None)
                }
            } else if let Some(sim) = &operand_sim {
                (self.forward_per_vmac(ctx, &xq, &fw.wmat, sim), None)
            } else {
                linear_forward(ctx, &xq, &fw.wmat, Some(self.bias.value.data()), false)
            }
        } else if use_i8 {
            let qi = self
                .quantizer
                .quantize_weights_i8_in(ws, &self.weight.value);
            let y = linear_forward_i8(
                ctx,
                &xq,
                &qi.codes,
                qi.scale,
                Some(self.bias.value.data()),
                self.out_features,
            );
            (y, None)
        } else {
            let qw = self.quantizer.quantize_weights_in(ws, &self.weight.value);
            let ste_scale = qw.ste_scale;
            let realized = match self.model.realize_weights(&qw.values, self.layer_index) {
                Some(r) => {
                    ws.recycle(qw.values);
                    r
                }
                None => qw.values,
            };
            let (y, cache) = if let Some(sim) = &operand_sim {
                (self.forward_per_vmac(ctx, &xq, &realized, sim), None)
            } else {
                linear_forward(
                    ctx,
                    &xq,
                    &realized,
                    Some(self.bias.value.data()),
                    mode.is_train(),
                )
            };
            ws.recycle(realized);
            if mode.is_train() {
                self.ste_scale = Some(ste_scale);
            } else {
                ws.recycle(ste_scale);
            }
            (y, cache)
        };
        ws.recycle(xq);
        if injecting && operand_sim.is_none() {
            let n_tot = self.n_tot();
            if let Some((seeds, noise_index)) = (!mode.is_train())
                .then(|| self.request_seeds.clone())
                .flatten()
            {
                // Per-request noise streams (serving) — see QConv2d.
                let n = y.dims()[0];
                assert_eq!(
                    seeds.len(),
                    n,
                    "QLinear {}: {} request seeds for batch of {n}",
                    self.name,
                    seeds.len()
                );
                let per_image = y.len() / n;
                for (i, chunk) in y.data_mut().chunks_mut(per_image).enumerate() {
                    self.model.reseed(noise_stream_seed(seeds[i], noise_index));
                    self.model.inject_slice(chunk, n_tot);
                }
            } else if ctx.metrics().enabled() {
                let stats = self.model.inject_traced(&mut y, n_tot);
                if !stats.is_empty() {
                    let enob = self.hw.vmac.expect("injects() implies a VMAC").enob;
                    ctx.metrics().merge_observations(
                        &self.hw.noise_gauge_key(&self.name, self.model.kind(), enob),
                        &stats,
                    );
                }
            } else {
                self.model.inject(&mut y, n_tot);
            }
        }
        self.cache = cache;
        y
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.backward", self.name));
        let cache = self
            .cache
            .as_ref()
            .expect("QLinear::backward without a Train-mode forward");
        let (dx, dw, db) = linear_backward(ctx, cache, grad_output);
        let ste = self
            .ste_scale
            .as_ref()
            .expect("STE scale cached in Train forward");
        self.weight.grad.add_assign(&dw.mul(ste));
        for (g, d) in self.bias.grad.data_mut().iter_mut().zip(&db) {
            *g += d;
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::vmac::Vmac;
    use ams_quant::QuantConfig;

    #[test]
    fn last_layer_injects_only_at_eval() {
        let mut r = rng::seeded(0);
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 8.0));
        let mut fc = QLinear::new("fc", 8, 4, &hw, true, 0, &mut r);
        let x = Tensor::ones(&[2, 8]);
        let t1 = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        let t2 = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        assert_eq!(t1, t2, "no injection during training on the last layer");
        let e1 = fc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_ne!(t1, e1, "eval must inject");
    }

    #[test]
    fn ablation_flag_restores_train_injection() {
        let mut r = rng::seeded(1);
        let mut hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 8.0));
        hw.inject_last_layer_train = true;
        let mut fc = QLinear::new("fc", 8, 4, &hw, true, 0, &mut r);
        let x = Tensor::ones(&[2, 8]);
        let t1 = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        let t2 = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        assert_ne!(
            t1, t2,
            "ablation mode injects fresh noise each training pass"
        );
    }

    #[test]
    fn gradients_flow_to_shadow_params() {
        let mut r = rng::seeded(2);
        let hw = HardwareConfig::quantized(QuantConfig::w6a6());
        let mut fc = QLinear::new("fc", 8, 4, &hw, true, 0, &mut r);
        let mut x = Tensor::zeros(&[3, 8]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        fc.backward(&ExecCtx::serial(), &Tensor::ones(y.dims()));
        assert!(fc.weight().grad.max_abs() > 0.0);
    }

    #[test]
    fn i8_kernel_stays_within_the_quantization_bound() {
        let mut r = rng::seeded(4);
        let hw = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut fc = QLinear::new("fc", 16, 5, &hw, false, 0, &mut r);
        let mut x = Tensor::zeros(&[3, 16]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let want = fc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let got = fc.forward(
            &ExecCtx::serial().with_kernel(KernelDispatch::I8),
            &x,
            Mode::Eval,
        );
        // DoReFa bounds both operands by 1, so each re-coding scale is at
        // most 1/127; the digital bias is exact on both paths.
        let s = 1.0f32 / 127.0;
        let bound = fc.n_tot() as f32 * (s + s * s * 0.25) + 1e-4;
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= bound, "i8 {g} vs f32 {w}, bound {bound}");
        }
    }

    #[test]
    fn i8_kernel_is_inert_in_train_mode() {
        let mut r = rng::seeded(5);
        let hw = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut fc = QLinear::new("fc", 8, 4, &hw, true, 0, &mut r);
        let x = Tensor::ones(&[2, 8]);
        let t1 = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        let t2 = fc.forward(
            &ExecCtx::serial().with_kernel(KernelDispatch::I8),
            &x,
            Mode::Train,
        );
        assert_eq!(t1, t2, "training must stay on the f32 kernels");
    }

    #[test]
    fn fp32_matches_plain_linear() {
        let mut r = rng::seeded(3);
        let hw = HardwareConfig::fp32();
        let mut fc = QLinear::new("fc", 6, 2, &hw, false, 0, &mut r);
        let mut x = Tensor::zeros(&[2, 6]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y = fc.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let (want, _) = linear_forward(
            &ExecCtx::serial(),
            &x,
            &fc.weight().value,
            Some(fc.bias.value.data()),
            false,
        );
        assert_eq!(y, want);
    }
}
