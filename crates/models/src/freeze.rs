//! Selective layer freezing (paper Table 2).

use ams_nn::Layer;
use serde::{Deserialize, Serialize};

/// How a topology's parameter names map onto the paper's Table-2 groups
/// (classifier / batch-norm / convolutional).
///
/// Produced by [`crate::ModelSpec::key_space`], so freezing classifies
/// against the *spec* rather than assuming one concrete net's naming. The
/// default matches every current zoo member: classifiers live under
/// `fc.`, batch-norm affines end in `.gamma` / `.beta`, and everything
/// else is convolutional.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointKeySpace {
    /// Name prefixes of classifier (fully-connected) parameters.
    pub fc_prefixes: &'static [&'static str],
    /// Name suffixes of batch-norm affine parameters.
    pub bn_suffixes: &'static [&'static str],
}

impl Default for CheckpointKeySpace {
    fn default() -> Self {
        CheckpointKeySpace {
            fc_prefixes: &["fc."],
            bn_suffixes: &[".gamma", ".beta"],
        }
    }
}

impl CheckpointKeySpace {
    /// Whether `name` is a classifier parameter.
    pub fn is_fc(&self, name: &str) -> bool {
        self.fc_prefixes.iter().any(|p| name.starts_with(p))
    }

    /// Whether `name` is a batch-norm affine parameter.
    pub fn is_bn(&self, name: &str) -> bool {
        self.bn_suffixes.iter().any(|s| name.ends_with(s))
    }
}

/// Which parameter groups to freeze during AMS retraining.
///
/// The paper freezes each group in turn to locate the mechanism of
/// accuracy recovery: freezing the convolutions barely matters, freezing
/// the batch-norm (and/or fully-connected) parameters destroys the
/// recovery — evidence that **batch norm** is what adapts to the injected
/// error.
///
/// # Example
///
/// ```
/// use ams_models::FreezePolicy;
///
/// assert!(FreezePolicy::Bn.applies_to("s1.b0.bn1.gamma"));
/// assert!(!FreezePolicy::Bn.applies_to("s1.b0.conv1.weight"));
/// assert!(FreezePolicy::Fc.applies_to("fc.weight"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FreezePolicy {
    /// Freeze nothing (Table 2 row "None").
    #[default]
    None,
    /// Freeze every convolutional weight.
    Conv,
    /// Freeze every batch-norm affine parameter.
    Bn,
    /// Freeze the fully-connected classifier.
    Fc,
    /// Freeze batch norm and the classifier together.
    BnFc,
    /// Freeze the convolutions *and* the classifier, training only the
    /// batch-norm parameters — the complementary probe of the paper's
    /// mechanism: if BN alone recovers the accuracy, BN is responsible.
    ConvFc,
}

impl FreezePolicy {
    /// All policies: the paper's Table 2 rows plus the complementary
    /// BN-only-training probe.
    pub const ALL: [FreezePolicy; 6] = [
        FreezePolicy::None,
        FreezePolicy::Conv,
        FreezePolicy::Bn,
        FreezePolicy::Fc,
        FreezePolicy::BnFc,
        FreezePolicy::ConvFc,
    ];

    /// Whether a parameter with this hierarchical name belongs to a frozen
    /// group under this policy, in the default [`CheckpointKeySpace`]:
    /// names starting with `fc.` are classifier parameters, names ending
    /// in `.gamma` / `.beta` are batch-norm parameters, and everything
    /// else is convolutional.
    pub fn applies_to(&self, param_name: &str) -> bool {
        self.applies_to_with(&CheckpointKeySpace::default(), param_name)
    }

    /// [`FreezePolicy::applies_to`] classified against an explicit model
    /// key-space.
    pub fn applies_to_with(&self, keys: &CheckpointKeySpace, param_name: &str) -> bool {
        let is_fc = keys.is_fc(param_name);
        let is_bn = keys.is_bn(param_name);
        let is_conv = !is_fc && !is_bn;
        match self {
            FreezePolicy::None => false,
            FreezePolicy::Conv => is_conv,
            FreezePolicy::Bn => is_bn,
            FreezePolicy::Fc => is_fc,
            FreezePolicy::BnFc => is_bn || is_fc,
            FreezePolicy::ConvFc => is_conv || is_fc,
        }
    }

    /// Sets the `frozen` flag on every parameter of `model` according to
    /// this policy (clearing flags the policy does not cover, so policies
    /// can be swapped on a live model).
    pub fn apply(&self, model: &mut dyn Layer) {
        self.apply_with(&CheckpointKeySpace::default(), model);
    }

    /// [`FreezePolicy::apply`] classified against an explicit model
    /// key-space (see [`crate::ModelSpec::key_space`]).
    pub fn apply_with(&self, keys: &CheckpointKeySpace, model: &mut dyn Layer) {
        model.for_each_param(&mut |p| {
            p.frozen = self.applies_to_with(keys, p.name());
        });
    }
}

impl std::fmt::Display for FreezePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FreezePolicy::None => "None",
            FreezePolicy::Conv => "Conv",
            FreezePolicy::Bn => "BN",
            FreezePolicy::Fc => "FC",
            FreezePolicy::BnFc => "BN and FC",
            FreezePolicy::ConvFc => "Conv and FC (ext)",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let conv = "s2.b1.conv2.weight";
        let down = "s2.b0.down.weight";
        let gamma = "s2.b0.bn_down.gamma";
        let beta = "bn0.beta";
        let fcw = "fc.weight";
        let fcb = "fc.bias";
        for (policy, frozen) in [
            (FreezePolicy::None, vec![]),
            (FreezePolicy::Conv, vec![conv, down]),
            (FreezePolicy::Bn, vec![gamma, beta]),
            (FreezePolicy::Fc, vec![fcw, fcb]),
            (FreezePolicy::BnFc, vec![gamma, beta, fcw, fcb]),
            (FreezePolicy::ConvFc, vec![conv, down, fcw, fcb]),
        ] {
            for name in [conv, down, gamma, beta, fcw, fcb] {
                assert_eq!(
                    policy.applies_to(name),
                    frozen.contains(&name),
                    "policy {policy} on {name}"
                );
            }
        }
    }

    #[test]
    fn display_matches_table2_labels() {
        let labels: Vec<String> = FreezePolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            labels,
            vec!["None", "Conv", "BN", "FC", "BN and FC", "Conv and FC (ext)"]
        );
    }
}
