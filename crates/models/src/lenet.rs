//! A LeNet-5-shaped quantized conv net for the model zoo.
//!
//! Two 5×5 convolution blocks (conv → BN → ReLU-1 → 2×2 max pool) feeding
//! a single fully-connected classifier — the classic LeCun topology
//! re-expressed on the same quantized/AMS layer stack as
//! [`crate::ResNetMini`], so every experiment (Table 1/2, Fig. 4–8) runs
//! unchanged against a second, non-residual model. Batch norm replaces the
//! original's per-map bias so the paper's Table-2 freeze probes (BN vs FC
//! vs conv) stay meaningful.

use ams_nn::{BatchNorm2d, ClippedRelu, Flatten, Layer, MaxPool2d, Mode, Param};
use ams_tensor::{rng, ExecCtx, Tensor};
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::config::{HardwareConfig, InputKind};
use crate::freeze::FreezePolicy;
use crate::frozen::SharedModelWeights;
use crate::qconv::QConv2d;
use crate::qlinear::QLinear;
use crate::spec::{AmsModel, ModelKind};
use crate::surgery::{EnergyReport, LayerEnergy};

/// Architecture of a [`LeNet5`].
///
/// # Example
///
/// ```
/// use ams_models::{HardwareConfig, LeNet5, LeNet5Config};
/// use ams_nn::{Layer, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let arch = LeNet5Config::tiny();
/// let mut net = LeNet5::new(&arch, &HardwareConfig::fp32());
/// let y = net.forward(&ExecCtx::serial(), &Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, arch.classes]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeNet5Config {
    /// Input channels.
    pub in_channels: usize,
    /// Output classes.
    pub classes: usize,
    /// Square input size in pixels (needed to size the classifier).
    pub image_size: usize,
    /// Channel widths of the two conv blocks (LeCun's 6 and 16, scaled to
    /// the synthetic substrate here).
    pub conv_channels: [usize; 2],
    /// Weight-initialization seed.
    pub init_seed: u64,
}

impl LeNet5Config {
    /// Quantized convolution layers in the topology.
    pub const CONV_LAYERS: usize = 2;

    /// Sized for the `quick` synthetic dataset (16×16, 16 classes).
    pub fn quick() -> Self {
        LeNet5Config {
            in_channels: 3,
            classes: 16,
            image_size: 16,
            conv_channels: [6, 16],
            init_seed: 42,
        }
    }

    /// Sized for the `full` synthetic dataset (24×24, 20 classes).
    pub fn full() -> Self {
        LeNet5Config {
            in_channels: 3,
            classes: 20,
            image_size: 24,
            conv_channels: [8, 20],
            init_seed: 42,
        }
    }

    /// Sized for the `test` synthetic dataset (8×8, 4 classes).
    pub fn tiny() -> Self {
        LeNet5Config {
            in_channels: 3,
            classes: 4,
            image_size: 8,
            conv_channels: [4, 8],
            init_seed: 42,
        }
    }

    /// Spatial size after the two 2×2 pools.
    ///
    /// # Panics
    ///
    /// Panics if the image does not survive the pools.
    pub fn final_spatial(&self) -> usize {
        assert!(
            self.image_size >= 4,
            "LeNet5Config: image size {} too small for two 2x2 pools",
            self.image_size
        );
        self.image_size / 4
    }

    /// Classifier input features.
    pub fn fc_in(&self) -> usize {
        let s = self.final_spatial();
        self.conv_channels[1] * s * s
    }
}

/// Noise-stream index reserved for the classifier, far from the conv
/// indices so architectures can grow without colliding (matches
/// [`crate::ResNetMini`]'s convention).
const FC_NOISE_INDEX: u64 = 1000;

/// The LeNet-5-shaped network (see module docs).
#[derive(Debug)]
pub struct LeNet5 {
    name: String,
    conv1: QConv2d,
    bn1: BatchNorm2d,
    act1: ClippedRelu,
    pool1: MaxPool2d,
    conv2: QConv2d,
    bn2: BatchNorm2d,
    act2: ClippedRelu,
    pool2: MaxPool2d,
    flatten: Flatten,
    fc: QLinear,
    config: LeNet5Config,
    hw: HardwareConfig,
}

impl LeNet5 {
    /// Builds the network for the given architecture and hardware.
    ///
    /// The first convolution reads sign-magnitude rescaled images
    /// (`InputKind::SignedRescaled`), like ResNetMini's stem; the second
    /// reads ReLU-1 activations. Noise streams: conv1 = 0, conv2 = 1,
    /// classifier = 1000.
    pub fn new(arch: &LeNet5Config, hw: &HardwareConfig) -> Self {
        let hw = hw.with_model_tag(ModelKind::LeNet5);
        let mut init = rng::seeded(arch.init_seed);
        let [c1, c2] = arch.conv_channels;
        let conv1 = QConv2d::new(
            "conv1",
            arch.in_channels,
            c1,
            5,
            1,
            2,
            &hw,
            InputKind::SignedRescaled,
            0,
            &mut init,
        );
        let bn1 = BatchNorm2d::new("bn1", c1);
        let conv2 = QConv2d::new("conv2", c1, c2, 5, 1, 2, &hw, InputKind::Unit, 1, &mut init);
        let bn2 = BatchNorm2d::new("bn2", c2);
        let fc = QLinear::new(
            "fc",
            arch.fc_in(),
            arch.classes,
            &hw,
            true,
            FC_NOISE_INDEX,
            &mut init,
        );
        LeNet5 {
            name: "lenet5".to_string(),
            conv1,
            bn1,
            act1: ClippedRelu::new("act1"),
            pool1: MaxPool2d::new("pool1", 2),
            conv2,
            bn2,
            act2: ClippedRelu::new("act2"),
            pool2: MaxPool2d::new("pool2", 2),
            flatten: Flatten::new("flatten"),
            fc,
            config: *arch,
            hw,
        }
    }

    /// The architecture this network was built from.
    pub fn config(&self) -> &LeNet5Config {
        &self.config
    }

    /// Visits both quantized convolutions in forward order.
    pub fn for_each_qconv(&mut self, f: &mut dyn FnMut(&mut QConv2d)) {
        f(&mut self.conv1);
        f(&mut self.conv2);
    }
}

impl Layer for LeNet5 {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = self.conv1.forward(ctx, input, mode);
        x = self.bn1.forward(ctx, &x, mode);
        x = self.act1.forward(ctx, &x, mode);
        x = self.pool1.forward(ctx, &x, mode);
        x = self.conv2.forward(ctx, &x, mode);
        x = self.bn2.forward(ctx, &x, mode);
        x = self.act2.forward(ctx, &x, mode);
        x = self.pool2.forward(ctx, &x, mode);
        x = self.flatten.forward(ctx, &x, mode);
        self.fc.forward(ctx, &x, mode)
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let mut g = self.fc.backward(ctx, grad_output);
        g = self.flatten.backward(ctx, &g);
        g = self.pool2.backward(ctx, &g);
        g = self.act2.backward(ctx, &g);
        g = self.bn2.backward(ctx, &g);
        g = self.conv2.backward(ctx, &g);
        g = self.pool1.backward(ctx, &g);
        g = self.act1.backward(ctx, &g);
        g = self.bn1.backward(ctx, &g);
        self.conv1.backward(ctx, &g)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.for_each_param(f);
        self.bn1.for_each_param(f);
        self.conv2.for_each_param(f);
        self.bn2.for_each_param(f);
        self.fc.for_each_param(f);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.conv1.for_each_state(f);
        self.bn1.for_each_state(f);
        self.conv2.for_each_state(f);
        self.bn2.for_each_state(f);
        self.fc.for_each_state(f);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl AmsModel for LeNet5 {
    fn kind(&self) -> ModelKind {
        ModelKind::LeNet5
    }

    fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    fn reseed_noise(&mut self, pass_seed: u64) {
        let mut idx = 0u64;
        self.for_each_qconv(&mut |c| {
            c.reseed_noise(pass_seed, idx);
            idx += 1;
        });
        self.fc.reseed_noise(pass_seed, FC_NOISE_INDEX);
    }

    fn noise_states(&mut self) -> Vec<rng::RngState> {
        let mut out = Vec::new();
        self.for_each_qconv(&mut |c| out.push(c.noise_state()));
        out.push(self.fc.noise_state());
        out
    }

    fn restore_noise_states(&mut self, states: &[rng::RngState]) {
        assert_eq!(
            states.len(),
            LeNet5Config::CONV_LAYERS + 1,
            "noise-state checkpoint has {} streams, this architecture needs {}",
            states.len(),
            LeNet5Config::CONV_LAYERS + 1,
        );
        let mut it = states.iter();
        self.for_each_qconv(&mut |c| {
            c.restore_noise_state(it.next().expect("length checked above"));
        });
        self.fc
            .restore_noise_state(it.next().expect("length checked above"));
    }

    fn set_probes(&mut self, enabled: bool) {
        self.for_each_qconv(&mut |c| c.set_probe(enabled));
    }

    fn probe_means(&mut self) -> Vec<(String, f32)> {
        let mut out = Vec::new();
        self.for_each_qconv(&mut |c| {
            if let Some(m) = c.probe_mean() {
                out.push((c.name().to_string(), m));
            }
        });
        out
    }

    fn apply_freeze(&mut self, policy: FreezePolicy) {
        policy.apply(self);
    }

    fn freeze_shared_weights(&mut self, ctx: &ExecCtx) -> SharedModelWeights {
        let mut convs = Vec::new();
        self.for_each_qconv(&mut |c| convs.push(c.freeze_eval_weights(ctx)));
        let fc = self.fc.freeze_eval_weights(ctx);
        SharedModelWeights { convs, fc }
    }

    fn adopt_shared_weights(&mut self, shared: &SharedModelWeights) {
        assert_eq!(
            shared.convs.len(),
            LeNet5Config::CONV_LAYERS,
            "shared weights have {} conv layers, this architecture needs {}",
            shared.convs.len(),
            LeNet5Config::CONV_LAYERS,
        );
        let mut it = shared.convs.iter();
        self.for_each_qconv(&mut |c| {
            c.adopt_frozen_weights(Arc::clone(it.next().expect("length checked above")));
        });
        self.fc.adopt_frozen_weights(Arc::clone(&shared.fc));
    }

    fn set_request_noise_seeds(&mut self, seeds: Option<Arc<Vec<u64>>>) {
        let mut idx = 0u64;
        self.for_each_qconv(&mut |c| {
            c.set_request_noise_seeds(seeds.clone(), idx);
            idx += 1;
        });
        self.fc.set_request_noise_seeds(seeds, FC_NOISE_INDEX);
    }

    fn energy_report(&mut self, ctx: &ExecCtx, image_size: usize) -> EnergyReport {
        let dummy = Tensor::zeros(&[1, self.config.in_channels, image_size, image_size]);
        let _ = self.forward(ctx, &dummy, Mode::Eval);
        let vmac = self.hw.vmac;
        let mut layers = Vec::new();
        self.for_each_qconv(&mut |c| {
            let macs = c.macs_per_image().expect("forward just ran");
            let energy_pj = vmac
                .map(|v| crate::surgery::layer_energy_pj(macs, v.enob, v.n_mult))
                .unwrap_or(0.0);
            layers.push(LayerEnergy {
                name: c.name().to_string(),
                macs,
                n_tot: c.n_tot(),
                energy_pj,
            });
        });
        let fc_macs = self.fc.macs_per_image();
        layers.push(LayerEnergy {
            name: self.fc.name().to_string(),
            macs: fc_macs,
            n_tot: self.fc.n_tot(),
            energy_pj: vmac
                .map(|v| crate::surgery::layer_energy_pj(fc_macs, v.enob, v.n_mult))
                .unwrap_or(0.0),
        });
        EnergyReport { layers }
    }

    fn error_budget(&mut self) -> Vec<(String, usize, Option<f32>)> {
        let mut out = Vec::new();
        self.for_each_qconv(&mut |c| {
            out.push((c.name().to_string(), c.n_tot(), c.error_sigma()));
        });
        out.push((
            self.fc.name().to_string(),
            self.fc.n_tot(),
            self.fc.error_sigma(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::vmac::Vmac;
    use ams_nn::Checkpoint;
    use ams_quant::QuantConfig;

    #[test]
    fn forward_shapes_at_all_presets() {
        for (arch, batch) in [
            (LeNet5Config::tiny(), 2),
            (LeNet5Config::quick(), 1),
            (LeNet5Config::full(), 1),
        ] {
            let mut net = LeNet5::new(&arch, &HardwareConfig::fp32());
            let s = arch.image_size;
            let y = net.forward(
                &ExecCtx::serial(),
                &Tensor::zeros(&[batch, 3, s, s]),
                Mode::Eval,
            );
            assert_eq!(y.dims(), &[batch, arch.classes]);
        }
    }

    #[test]
    fn param_names_match_the_table2_key_space() {
        let mut net = LeNet5::new(&LeNet5Config::tiny(), &HardwareConfig::fp32());
        let mut names = Vec::new();
        net.for_each_param(&mut |p| names.push(p.name().to_string()));
        assert!(names.contains(&"conv1.weight".to_string()));
        assert!(names.contains(&"bn2.gamma".to_string()));
        assert!(names.contains(&"fc.weight".to_string()));
        assert!(names.contains(&"fc.bias".to_string()));
        // Every name classifies into exactly the intended Table-2 group.
        for n in &names {
            let is_fc = FreezePolicy::Fc.applies_to(n);
            let is_bn = FreezePolicy::Bn.applies_to(n);
            let is_conv = FreezePolicy::Conv.applies_to(n);
            assert_eq!(
                [is_fc, is_bn, is_conv].iter().filter(|&&b| b).count(),
                1,
                "{n} must belong to exactly one group"
            );
            if n.starts_with("conv") {
                assert!(is_conv, "{n}");
            }
        }
    }

    #[test]
    fn trains_a_step_under_ams_hardware() {
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 7.0));
        let mut net = LeNet5::new(&LeNet5Config::tiny(), &hw);
        let mut r = rng::seeded(1);
        let mut x = Tensor::zeros(&[4, 3, 8, 8]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y = net.forward(&ExecCtx::serial(), &x, Mode::Train);
        let (loss, grad) = ams_nn::softmax_cross_entropy(&y, &[0, 1, 2, 3]);
        assert!(loss.is_finite());
        net.backward(&ExecCtx::serial(), &grad);
        ams_nn::Sgd::new(0.01).step(&mut net);
    }

    #[test]
    fn checkpoint_round_trip_is_bit_identical() {
        let mut a = LeNet5::new(&LeNet5Config::tiny(), &HardwareConfig::fp32());
        let ckpt = Checkpoint::from_layer(&mut a);
        let arch_b = LeNet5Config {
            init_seed: 43,
            ..LeNet5Config::tiny()
        };
        let mut b = LeNet5::new(&arch_b, &HardwareConfig::fp32());
        ckpt.load_into(&mut b).expect("same structure");
        let x = Tensor::full(&[1, 3, 8, 8], 0.3);
        let ya = a.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let yb = b.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn noise_states_round_trip() {
        let hw = HardwareConfig::ams_eval_only(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 6.0));
        let mut net = LeNet5::new(&LeNet5Config::tiny(), &hw);
        net.reseed_noise(7);
        let x = Tensor::full(&[1, 3, 8, 8], 0.4);
        let _ = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let states = net.noise_states();
        assert_eq!(states.len(), 3);
        let a = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        net.restore_noise_states(&states);
        let b = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_eq!(a.data(), b.data(), "same cursor, same noise");
    }

    #[test]
    #[should_panic(expected = "noise-state checkpoint has 2 streams")]
    fn restore_rejects_wrong_stream_count() {
        let mut net = LeNet5::new(&LeNet5Config::tiny(), &HardwareConfig::fp32());
        let states = net.noise_states();
        net.restore_noise_states(&states[..2]);
    }

    #[test]
    fn runs_under_bfp_quantization() {
        use ams_quant::QuantScheme;
        let quant = QuantConfig::w8a8().with_scheme(QuantScheme::Bfp { block: 16 });
        let mut net = LeNet5::new(&LeNet5Config::tiny(), &HardwareConfig::quantized(quant));
        let x = Tensor::full(&[2, 3, 8, 8], 0.25);
        let y = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
