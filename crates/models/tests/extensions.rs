//! Integration tests of the Section 4 extensions at network level:
//! per-VMAC evaluation, static mismatch, batch-norm folding and energy
//! reporting.

use ams_core::mismatch::MismatchModel;
use ams_core::vmac::Vmac;
use ams_models::{ErrorModelConfig, HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_nn::{Layer, Mode};
use ams_quant::QuantConfig;
use ams_tensor::{rng, ExecCtx, Tensor};

fn random_input(seed: u64) -> Tensor {
    let mut x = Tensor::zeros(&[2, 3, 8, 8]);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
    x
}

#[test]
fn per_vmac_eval_is_deterministic_and_close_to_lumped_scale() {
    let arch = ResNetMiniConfig::tiny();
    let quant = QuantConfig::w8a8();
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let hw_pv = HardwareConfig::ams_eval_only(quant, vmac).with_per_vmac_eval();
    assert_eq!(hw_pv.error_model, ErrorModelConfig::per_vmac());
    let mut net = ResNetMini::new(&arch, &hw_pv);
    let x = random_input(1);
    // Chunked quantization is deterministic: repeated eval passes agree
    // exactly (unlike the stochastic lumped mode).
    let y1 = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
    let y2 = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
    assert_eq!(y1, y2);

    // And it differs from the error-free network by roughly the modeled
    // amount: nonzero, but far smaller than the signal.
    let mut clean = ResNetMini::new(&arch, &HardwareConfig::quantized(quant));
    let yc = clean.forward(&ExecCtx::serial(), &x, Mode::Eval);
    let diff = y1.sub(&yc);
    assert!(
        diff.max_abs() > 0.0,
        "per-VMAC quantization must perturb the output"
    );
    assert!(
        diff.max_abs() < yc.max_abs().max(1.0) * 2.0,
        "perturbation should not dwarf the signal"
    );
}

#[test]
fn per_vmac_training_falls_back_to_lumped() {
    // Paper §4: the fine-grained model "can be performed for evaluation
    // only" — training must still work (and use the lumped path).
    let arch = ResNetMiniConfig::tiny();
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let hw = HardwareConfig::ams(QuantConfig::w8a8(), vmac).with_per_vmac_eval();
    let mut net = ResNetMini::new(&arch, &hw);
    let x = random_input(2);
    let y = net.forward(&ExecCtx::serial(), &x, Mode::Train);
    let (_, grad) = ams_nn::softmax_cross_entropy(&y, &[0, 1]);
    let dx = net.backward(&ExecCtx::serial(), &grad);
    assert_eq!(dx.dims(), x.dims());
}

#[test]
fn mismatch_is_static_across_passes_but_differs_across_chips() {
    let arch = ResNetMiniConfig::tiny();
    let quant = QuantConfig::w8a8();
    let chip_a = HardwareConfig::quantized(quant).with_mismatch(MismatchModel::new(0.05, 1));
    let chip_b = HardwareConfig::quantized(quant).with_mismatch(MismatchModel::new(0.05, 2));
    let mut net_a = ResNetMini::new(&arch, &chip_a);
    let mut net_b = ResNetMini::new(&arch, &chip_b);
    let x = random_input(3);
    let a1 = net_a.forward(&ExecCtx::serial(), &x, Mode::Eval);
    let a2 = net_a.forward(&ExecCtx::serial(), &x, Mode::Eval);
    assert_eq!(a1, a2, "mismatch is a static device draw, not noise");
    let b = net_b.forward(&ExecCtx::serial(), &x, Mode::Eval);
    assert_ne!(a1, b, "different chips realize different devices");

    // And mismatch actually perturbs relative to the ideal network.
    let mut ideal = ResNetMini::new(&arch, &HardwareConfig::quantized(quant));
    let yi = ideal.forward(&ExecCtx::serial(), &x, Mode::Eval);
    assert_ne!(a1, yi);
}

#[test]
fn energy_report_covers_every_layer_and_prices_by_eq4() {
    let arch = ResNetMiniConfig::tiny();
    let vmac = Vmac::new(8, 8, 8, 12.0);
    let hw = HardwareConfig::ams(QuantConfig::w8a8(), vmac);
    let mut net = ResNetMini::new(&arch, &hw);
    let report = net.energy_report(&ExecCtx::serial(), 8);
    assert_eq!(report.layers.len(), arch.conv_layer_count() + 1);
    assert!(report.total_macs() > 0);
    // Under a uniform VMAC, fJ/MAC is exactly the Eq. 4 value.
    let fj = report.fj_per_mac().expect("macs > 0");
    let expected = ams_core::energy::mac_energy_fj(12.0, 8);
    assert!((fj - expected).abs() < 1e-6, "{fj} vs {expected}");
    // The stem (8x8 output) dominates less than the widest stage: sanity
    // that MAC counts follow geometry.
    let stem = report
        .layers
        .iter()
        .find(|l| l.name == "stem")
        .expect("stem present");
    assert_eq!(stem.macs, 8 * 8 * arch.stem_channels * stem.n_tot);

    // Without a VMAC, energy is zero but MACs persist.
    let mut fp = ResNetMini::new(&arch, &HardwareConfig::fp32());
    let fp_report = fp.energy_report(&ExecCtx::serial(), 8);
    assert_eq!(fp_report.total_macs(), report.total_macs());
    assert_eq!(fp_report.total_pj(), 0.0);
}

fn train_tiny() -> (ams_data::SynthImageNet, ams_nn::Checkpoint) {
    let data = ams_data::SynthConfig::tiny().generate();
    let arch = ResNetMiniConfig::tiny();
    let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
    // Short SGD loop, enough to beat chance.
    let opt = ams_nn::Sgd::with_momentum(0.08, 0.9);
    let mut r = rng::seeded(0);
    for _ in 0..6 {
        let shuffled = data.train.random_flip(&mut r);
        for (images, labels) in ams_data::Batcher::new(&shuffled, 16, &mut r) {
            let logits = net.forward(&ExecCtx::serial(), &images, Mode::Train);
            let (_, grad) = ams_nn::softmax_cross_entropy(&logits, &labels);
            net.backward(&ExecCtx::serial(), &grad);
            opt.step(&mut net);
        }
    }
    (data, ams_nn::Checkpoint::from_layer(&mut net))
}

#[test]
fn mismatch_degrades_accuracy_monotonically_in_sigma() {
    // Statistical, but with a wide margin: 50% device mismatch on a tiny
    // trained net must not beat the clean network.
    let (data, ckpt) = train_tiny();
    let arch = ResNetMiniConfig::tiny();
    let quant = QuantConfig::w8a8();
    let accuracy_with = |sigma: f64| -> f32 {
        let mut hw = HardwareConfig::quantized(quant);
        if sigma > 0.0 {
            hw = hw.with_mismatch(MismatchModel::new(sigma, 7));
        }
        let mut net = ResNetMini::new(&arch, &hw);
        ckpt.load_into(&mut net).expect("same architecture");
        let mut correct = 0usize;
        for (images, labels) in ams_data::Batcher::sequential(&data.val, 16) {
            let logits = net.forward(&ExecCtx::serial(), &images, Mode::Eval);
            let preds = logits.argmax_rows();
            correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        }
        correct as f32 / data.val.len() as f32
    };
    let clean = accuracy_with(0.0);
    let heavy = accuracy_with(0.5);
    assert!(
        heavy <= clean,
        "50% device mismatch must not beat the clean network ({heavy} vs {clean})"
    );
}
