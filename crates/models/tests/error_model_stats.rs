//! Statistical agreement between the per-VMAC chunked simulation and the
//! lumped Gaussian model.
//!
//! Eq. 2 predicts `Var(E_tot) = (N_tot / N_mult) · LSB²/12` per output
//! activation. The lumped model draws that variance directly; the
//! per-VMAC simulator realizes it mechanically by quantizing each
//! `N_mult`-sized partial sum on the ADC grid. Over random inputs the
//! two must agree — this is the paper's justification for training on
//! the cheap lumped path (§4).

use ams_core::inject::layer_error_sigma;
use ams_core::vmac::Vmac;
use ams_models::{HardwareConfig, InputKind, QConv2d, QLinear};
use ams_nn::{Layer, Mode};
use ams_quant::QuantConfig;
use ams_tensor::{rng, ExecCtx, Tensor};

fn random_input(dims: &[usize], seed: u64) -> Tensor {
    let mut x = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
    x
}

/// Sample variance of `noisy − clean` (mean removed).
fn error_variance(noisy: &Tensor, clean: &Tensor) -> f64 {
    let diff = noisy.sub(clean);
    let d = diff.data();
    let n = d.len() as f64;
    let mean: f64 = d.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    d.iter()
        .map(|&v| (f64::from(v) - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0)
}

fn assert_matches_eq2(label: &str, empirical: f64, predicted: f64, lo: f64, hi: f64) {
    let ratio = empirical / predicted;
    assert!(
        ratio > lo && ratio < hi,
        "{label}: empirical error variance {empirical:.3e} vs Eq. 2 prediction \
         {predicted:.3e} (ratio {ratio:.3}, expected in ({lo}, {hi}))"
    );
}

#[test]
fn conv_per_vmac_variance_matches_lumped_and_eq2() {
    let quant = QuantConfig::w8a8();
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let ctx = ExecCtx::serial();
    let (c_in, c_out, k) = (8, 8, 3);

    let build = |hw: &HardwareConfig| {
        let mut r = rng::seeded(42);
        QConv2d::new("conv", c_in, c_out, k, 1, 1, hw, InputKind::Unit, 0, &mut r)
    };
    let mut clean = build(&HardwareConfig::quantized(quant));
    let mut lumped = build(&HardwareConfig::ams_eval_only(quant, vmac));
    let mut per_vmac = build(&HardwareConfig::ams_eval_only(quant, vmac).with_per_vmac_eval());

    let x = random_input(&[4, c_in, 8, 8], 7);
    let yc = clean.forward(&ctx, &x, Mode::Eval);
    let yl = lumped.forward(&ctx, &x, Mode::Eval);
    let yp = per_vmac.forward(&ctx, &x, Mode::Eval);

    let n_tot = clean.n_tot();
    let predicted = f64::from(layer_error_sigma(&vmac, n_tot)).powi(2);
    // The lumped path draws i.i.d. N(0, σ): sample variance over the 2048
    // output elements lands within a few percent of Eq. 2.
    assert_matches_eq2(
        "conv lumped",
        error_variance(&yl, &yc),
        predicted,
        0.8,
        1.25,
    );
    // The chunked simulation's quantization residuals are only
    // approximately uniform, so allow a wider statistical band.
    assert_matches_eq2(
        "conv per-vmac",
        error_variance(&yp, &yc),
        predicted,
        0.5,
        2.0,
    );
}

#[test]
fn linear_per_vmac_variance_matches_lumped_and_eq2() {
    let quant = QuantConfig::w8a8();
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let ctx = ExecCtx::serial();
    let (fin, fout) = (64, 32);

    let build = |hw: &HardwareConfig| {
        let mut r = rng::seeded(43);
        QLinear::new("fc", fin, fout, hw, false, 0, &mut r)
    };
    let mut clean = build(&HardwareConfig::quantized(quant));
    let mut lumped = build(&HardwareConfig::ams_eval_only(quant, vmac));
    let mut per_vmac = build(&HardwareConfig::ams_eval_only(quant, vmac).with_per_vmac_eval());

    let x = random_input(&[64, fin], 9);
    let yc = clean.forward(&ctx, &x, Mode::Eval);
    let yl = lumped.forward(&ctx, &x, Mode::Eval);
    let yp = per_vmac.forward(&ctx, &x, Mode::Eval);

    let n_tot = clean.n_tot();
    let predicted = f64::from(layer_error_sigma(&vmac, n_tot)).powi(2);
    assert_matches_eq2(
        "linear lumped",
        error_variance(&yl, &yc),
        predicted,
        0.8,
        1.25,
    );
    assert_matches_eq2(
        "linear per-vmac",
        error_variance(&yp, &yc),
        predicted,
        0.5,
        2.0,
    );
}
