//! Steady-state allocation behavior of the quantized layers: once the
//! workspace arena is warm, eval forwards draw every f32 buffer from the
//! pool — zero fresh heap allocations in the hot path.

use ams_models::{HardwareConfig, InputKind, QConv2d, QLinear};
use ams_nn::{Layer, Mode};
use ams_quant::QuantConfig;
use ams_tensor::{rng, ExecCtx, Tensor};

fn input(dims: &[usize], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, 0.0, 1.0, &mut r);
    t
}

/// After one warm-up forward, QConv2d eval forwards allocate nothing:
/// every tensor (quantized input, quantized weight, lowered columns,
/// product matrix, output) cycles through the context's workspace.
#[test]
fn qconv_eval_steady_state_allocates_nothing() {
    let ctx = ExecCtx::serial();
    let ws = ctx.workspace();
    let mut r = rng::seeded(0);
    let hw = HardwareConfig::quantized(QuantConfig::w8a8());
    let mut qc = QConv2d::new("c", 3, 8, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
    let x = input(&[2, 3, 10, 10], 1);

    // Warm-up: the pool starts empty, so this forward allocates.
    let y = qc.forward(&ctx, &x, Mode::Eval);
    ws.recycle(y);
    let warm = ws.fresh_allocs();
    assert!(warm > 0, "warm-up must populate the pool");

    // Steady state: the caller recycles the output (as the next layer /
    // the runner does), so every subsequent forward reuses pooled
    // buffers exclusively.
    let mut seen = Vec::new();
    for i in 0..8 {
        let y = qc.forward(&ctx, &x, Mode::Eval);
        assert_eq!(
            ws.fresh_allocs(),
            warm,
            "eval forward {i} allocated fresh buffers in steady state"
        );
        seen.push(y.data().as_ptr());
        ws.recycle(y);
    }
    // The outputs come from a small cycle of pooled buffers (warm-up
    // created a handful in the output's capacity class; LIFO pop order
    // rotates among them). Physical reuse shows up as repeated
    // pointers, not fresh addresses every pass.
    let mut distinct: Vec<_> = seen.clone();
    distinct.sort();
    distinct.dedup();
    assert!(
        distinct.len() < seen.len(),
        "8 steady-state forwards returned 8 distinct buffers — no reuse: {seen:?}"
    );
}

/// Same steady-state contract for the quantized classifier head.
#[test]
fn qlinear_eval_steady_state_allocates_nothing() {
    let ctx = ExecCtx::serial();
    let ws = ctx.workspace();
    let mut r = rng::seeded(2);
    let hw = HardwareConfig::quantized(QuantConfig::w8a8());
    let mut fc = QLinear::new("fc", 32, 10, &hw, true, 0, &mut r);
    let x = input(&[4, 32], 3);

    let y = fc.forward(&ctx, &x, Mode::Eval);
    ws.recycle(y);
    let warm = ws.fresh_allocs();

    for i in 0..4 {
        let y = fc.forward(&ctx, &x, Mode::Eval);
        assert_eq!(
            ws.fresh_allocs(),
            warm,
            "eval forward {i} allocated fresh buffers in steady state"
        );
        ws.recycle(y);
    }
    assert!(ws.pool_hits() > 0, "steady state must hit the pool");
}

/// Train-mode forwards keep the backward cache and STE scale alive, but
/// the *next* forward retires them back into the pool, so training also
/// reaches a steady state (one forward's working set in flight).
#[test]
fn qconv_train_reaches_steady_state() {
    let ctx = ExecCtx::serial();
    let ws = ctx.workspace();
    let mut r = rng::seeded(4);
    let hw = HardwareConfig::quantized(QuantConfig::w8a8());
    let mut qc = QConv2d::new("c", 3, 8, 3, 1, 1, &hw, InputKind::Unit, 0, &mut r);
    let x = input(&[2, 3, 10, 10], 5);

    // Two warm-ups: the first fills the pool, the second may still
    // allocate because the first forward's cache is only retired at the
    // start of the second.
    for _ in 0..2 {
        let y = qc.forward(&ctx, &x, Mode::Train);
        ws.recycle(y);
    }
    let warm = ws.fresh_allocs();
    for i in 0..3 {
        let y = qc.forward(&ctx, &x, Mode::Train);
        assert_eq!(
            ws.fresh_allocs(),
            warm,
            "train forward {i} allocated fresh buffers in steady state"
        );
        ws.recycle(y);
    }
}
