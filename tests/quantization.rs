//! Cross-crate quantization properties: the floating-point DoReFa
//! quantizers agree with exact sign-magnitude code arithmetic, and the
//! quantized layers preserve the invariants the error model depends on.

use ams_repro::models::{HardwareConfig, InputKind, QConv2d};
use ams_repro::nn::{Layer, Mode};
use ams_repro::quant::{
    quantization_levels, quantize_activations, quantize_signed, QuantConfig, SignMagnitude,
    WeightQuantizer, WeightScheme,
};
use ams_repro::tensor::{rng, ExecCtx, Tensor};
use proptest::prelude::*;

mod common;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Float activation quantization lands exactly on the k-bit grid.
    #[test]
    fn activation_grid_exact(x in 0.0f32..1.0, bits in 1u32..12) {
        let t = Tensor::from_vec(&[1], vec![x]).expect("len ok");
        let q = quantize_activations(&t, bits).data()[0];
        let code = q * quantization_levels(bits);
        prop_assert!((code - code.round()).abs() < 1e-3, "off grid: {q} at {bits} bits");
        prop_assert!((q - x).abs() <= 0.5 / quantization_levels(bits) + 1e-6);
    }

    /// Signed quantization agrees with exact sign-magnitude codes.
    #[test]
    fn signed_quant_matches_codes(x in -1.0f32..1.0, bits in 2u32..12) {
        let t = Tensor::from_vec(&[1], vec![x]).expect("len ok");
        let via_float = quantize_signed(&t, bits).data()[0];
        let via_codes = SignMagnitude::encode(x, bits).decode();
        prop_assert!((via_float - via_codes).abs() < 1e-5);
    }

    /// DoReFa weight quantization is idempotent (a quantized tensor
    /// re-quantizes to itself) under the clamp scheme.
    #[test]
    fn clamp_weights_idempotent(w in proptest::collection::vec(-2.0f32..2.0, 1..32), bits in 2u32..10) {
        let t = Tensor::from_vec(&[w.len()], w).expect("len ok");
        let q = WeightQuantizer::with_scheme(bits, WeightScheme::Clamp);
        let once = q.quantize(&t).values;
        let twice = q.quantize(&once).values;
        for (a, b) in once.data().iter().zip(twice.data()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Quantized weights are always bounded to [-1, 1] under both schemes.
    #[test]
    fn weights_bounded(w in proptest::collection::vec(-50.0f32..50.0, 1..64), bits in 1u32..10) {
        let t = Tensor::from_vec(&[w.len()], w).expect("len ok");
        for scheme in [WeightScheme::Tanh, WeightScheme::Clamp] {
            let q = WeightQuantizer::with_scheme(bits, scheme);
            prop_assert!(q.quantize(&t).values.max_abs() <= 1.0 + 1e-6);
        }
    }
}

#[test]
fn qconv_output_bounded_by_ntot() {
    // DoReFa bounds |w| ≤ 1 and a ∈ [0,1], so a conv output can never
    // exceed N_tot — the invariant that pins the VMAC full-scale (Fig. 2).
    let mut r = rng::seeded(3);
    let hw = HardwareConfig::quantized(QuantConfig::w6a4());
    for &(c_in, k) in &[(3usize, 3usize), (8, 1), (4, 5)] {
        let mut conv = QConv2d::new("c", c_in, 6, k, 1, k / 2, &hw, InputKind::Unit, 0, &mut r);
        let x = common::seeded_uniform(&[2, c_in, 8, 8], 0.0, 1.0, c_in as u64);
        let y = conv.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert!(
            y.max_abs() <= conv.n_tot() as f32 + 1e-4,
            "output {} exceeds N_tot {}",
            y.max_abs(),
            conv.n_tot()
        );
    }
}

#[test]
fn fp32_quantizers_are_exact_passthrough() {
    let q = WeightQuantizer::new(32);
    let w = common::seeded_normal(&[64], 0.0, 3.0, 4);
    assert_eq!(q.quantize(&w).values, w);
    assert_eq!(quantize_activations(&w, 32), w);
    assert_eq!(quantize_signed(&w, 32), w);
}

#[test]
fn product_precision_matches_fig2() {
    // Exhaustively: for small widths, every code product fits in
    // B_W + B_X − 2 magnitude bits (plus sign), and the bound is tight.
    let (bw, bx) = (4u32, 3u32);
    let wmax = (1u32 << (bw - 1)) - 1;
    let xmax = (1u32 << (bx - 1)) - 1;
    let mut max_product = 0u32;
    for wc in 0..=wmax {
        for xc in 0..=xmax {
            max_product = max_product.max(wc * xc);
        }
    }
    let magnitude_bits = QuantConfig::new(bw, bx).product_magnitude_bits();
    assert!(
        max_product < (1 << magnitude_bits),
        "products must fit in Fig. 2's budget"
    );
    assert!(
        max_product >= (1 << (magnitude_bits - 1)),
        "the budget is tight (uses its top bit)"
    );
}
