//! Helpers shared across the workspace integration tests.
//!
//! Each file under `tests/` is its own crate, so anything two of them
//! need lives here behind `mod common;`. Three families:
//!
//! * scratch-directory plumbing ([`temp_results`]);
//! * seeded tensor construction ([`seeded_uniform`], [`seeded_normal`]) —
//!   the `zeros` + `rng::seeded` + `fill_*` dance every test used to
//!   hand-roll;
//! * the statistical acceptance machinery for the integer GEMM fast path
//!   ([`ulp_stats`], [`i8_quantization_bound`]): the i8 kernel is *not*
//!   bit-identical to the f32 path — it rounds onto the symmetric i8 grid
//!   — so its tests gate on error distributions instead of `assert_eq`.

// Each integration-test crate includes this module but uses only a
// subset of it.
#![allow(dead_code)]

use ams_repro::tensor::{rng, Tensor};

/// A fresh scratch results directory under the OS temp dir, cleared of
/// any debris from a previous crashed run.
pub fn temp_results(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ams_repro_harness_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tensor of the given shape filled uniformly from `[lo, hi)` with its
/// own seeded generator, so tests get reproducible data without
/// threading RNG state through their setup.
pub fn seeded_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, lo, hi, &mut r);
    t
}

/// A tensor of the given shape filled with seeded Gaussian samples.
pub fn seeded_normal(dims: &[usize], mean: f32, std: f32, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_normal(&mut t, mean, std, &mut r);
    t
}

/// Error distribution of one float slice against a reference slice.
#[derive(Debug, Clone, Copy)]
pub struct UlpStats {
    /// Largest ULP distance over all elements.
    pub max_ulp: u64,
    /// Mean ULP distance.
    pub mean_ulp: f64,
    /// Largest absolute difference.
    pub max_abs: f64,
    /// Mean absolute difference.
    pub mean_abs: f64,
    /// Largest relative difference `|a−b| / max(|b|, tiny)`.
    pub max_rel: f64,
    /// Mean relative difference.
    pub mean_rel: f64,
}

/// Distance in units-in-the-last-place between two finite floats.
///
/// Uses the monotone mapping from f32 bit patterns onto a signed integer
/// line (negative floats reflected below zero), under which adjacent
/// representable floats are adjacent integers — so the distance counts
/// representable values between `a` and `b`, across zero included.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    fn monotone(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 { i32::MIN ^ bits } else { bits })
    }
    monotone(a).abs_diff(monotone(b))
}

/// Computes the error distribution of `got` against `want`.
///
/// Panics if lengths differ or either side holds a non-finite value —
/// an infinity or NaN is a kernel bug, not a rounding difference.
pub fn ulp_stats(got: &[f32], want: &[f32]) -> UlpStats {
    assert_eq!(got.len(), want.len(), "length mismatch");
    assert!(!got.is_empty(), "empty comparison");
    let mut s = UlpStats {
        max_ulp: 0,
        mean_ulp: 0.0,
        max_abs: 0.0,
        mean_abs: 0.0,
        max_rel: 0.0,
        mean_rel: 0.0,
    };
    for (&g, &w) in got.iter().zip(want) {
        assert!(g.is_finite() && w.is_finite(), "non-finite: {g} vs {w}");
        let ulp = ulp_distance(g, w);
        let abs = f64::from((g - w).abs());
        let rel = abs / f64::from(w.abs()).max(1e-12);
        s.max_ulp = s.max_ulp.max(ulp);
        s.mean_ulp += ulp as f64;
        s.max_abs = s.max_abs.max(abs);
        s.mean_abs += abs;
        s.max_rel = s.max_rel.max(rel);
        s.mean_rel += rel;
    }
    s.mean_ulp /= got.len() as f64;
    s.mean_abs /= got.len() as f64;
    s.mean_rel /= got.len() as f64;
    s
}

/// Statistical acceptance bound for one output of the i8 GEMM fast path
/// against the exact f32 dot product of the *unquantized* operands.
///
/// Re-coding each operand onto the symmetric i8 grid perturbs it by at
/// most half a step (`s_a = max|a|/127`, `s_w = max|w|/127`), so each of
/// the `k` products is off by at most
/// `max|a|·s_w/2 + max|w|·s_a/2 + s_a·s_w/4` and the dot product by `k`
/// times that. The trailing `1e-4` absorbs the f32 rounding of the
/// reference side, which accumulates in a different order.
pub fn i8_quantization_bound(k: usize, max_a: f32, max_w: f32) -> f32 {
    let sa = max_a / 127.0;
    let sw = max_w / 127.0;
    k as f32 * (max_a * sw * 0.5 + max_w * sa * 0.5 + sa * sw * 0.25) + 1e-4
}
