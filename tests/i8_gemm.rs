//! Statistical acceptance suite for the i8×i8→i32 GEMM fast path.
//!
//! The integer kernel is deliberately *not* bit-identical to the f32
//! path: both operands round onto the symmetric i8 grid before the dot
//! product. What it must satisfy instead is split into two contracts,
//! tested separately:
//!
//! * **determinism** — against its own serial i64 oracle
//!   (`matmul_i8_reference`) the kernel is exact, for every shape,
//!   thread count and sparsity branch (integer arithmetic has one right
//!   answer);
//! * **accuracy** — against the exact f32 product of the *unquantized*
//!   operands, every output stays inside the statistical bound derived
//!   from the quantization step sizes (`common::i8_quantization_bound`),
//!   and the error *distribution* (via `common::ulp_stats`) behaves: the
//!   mean relative error sits far below the worst case.

use ams_repro::tensor::{
    matmul_i8_a_bt_in, matmul_i8_in, matmul_i8_reference, matmul_reference, quantize_symmetric_i8,
    ExecCtx, Tensor,
};
use proptest::prelude::*;

mod common;

/// Thread counts exercised per case: serial, small pool, oversubscribed.
const THREADS: [usize; 3] = [1, 3, 8];

fn ctx_for(threads: usize) -> ExecCtx {
    if threads == 1 {
        ExecCtx::serial()
    } else {
        ExecCtx::with_threads(threads)
    }
}

/// DoReFa-shaped operands: activations in `[0, 1]`, weights in `[-1, 1]`,
/// both seeded off the proptest case.
fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let w = common::seeded_uniform(&[m, k], -1.0, 1.0, seed);
    let a = common::seeded_uniform(&[k, n], 0.0, 1.0, seed ^ 0x9e37_79b9);
    (w, a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accuracy: every output of the i8 kernel lands within the
    /// quantization bound of the exact f32 product, and the error
    /// distribution is healthy (mean relative error well under 1%).
    #[test]
    fn i8_stays_within_the_statistical_bound(
        m in 1usize..24, k in 1usize..40, n in 1usize..24, seed in 0u64..1024,
    ) {
        let (w, a) = operands(m, k, n, seed);
        let (wc, ws) = quantize_symmetric_i8(w.data());
        let (ac, ascale) = quantize_symmetric_i8(a.data());
        let ctx = ExecCtx::serial();
        let got = matmul_i8_in(&ctx, m, k, n, &wc, &ac, ws * ascale, false);
        let want = matmul_reference(&w, &a);
        let bound = common::i8_quantization_bound(k, a.max_abs(), w.max_abs());
        let stats = common::ulp_stats(got.data(), want.data());
        prop_assert!(
            stats.max_abs <= f64::from(bound),
            "max abs {} exceeds bound {bound} at {m}x{k}x{n}",
            stats.max_abs
        );
        // The bound is a worst case (every element off by half a step,
        // all errors aligned); the typical error grows like √k, not k,
        // so the mean must sit well below it.
        if k >= 8 {
            prop_assert!(
                stats.mean_abs < f64::from(bound) * 0.5,
                "mean abs error {} not well below bound {bound} at {m}x{k}x{n}",
                stats.mean_abs
            );
        }
    }

    /// Determinism: thread count and the sparse-lhs branch are invisible
    /// — the kernel matches its serial i64 oracle bit for bit.
    #[test]
    fn i8_is_exact_against_its_oracle_on_every_branch(
        m in 1usize..20, k in 1usize..40, n in 1usize..20, seed in 0u64..1024,
        sparse_sel in 0u32..2,
    ) {
        let sparse = sparse_sel == 1;
        let (w, a) = operands(m, k, n, seed);
        let (mut wc, ws) = quantize_symmetric_i8(w.data());
        if sparse {
            // Zero out most of the lhs so the skip branch has real work.
            for (i, c) in wc.iter_mut().enumerate() {
                if i % 4 != 0 {
                    *c = 0;
                }
            }
        }
        let (ac, ascale) = quantize_symmetric_i8(a.data());
        let scale = ws * ascale;
        let want = matmul_i8_reference(m, k, n, &wc, &ac, scale);
        for threads in THREADS {
            let got = matmul_i8_in(&ctx_for(threads), m, k, n, &wc, &ac, scale, sparse);
            prop_assert_eq!(&got, &want, "threads {} sparse {}", threads, sparse);
        }
    }

    /// The fused-epilogue `A·Bᵀ + bias` variant stays within the same
    /// statistical bound of its f32 counterpart.
    #[test]
    fn i8_a_bt_with_bias_stays_within_the_bound(
        m in 1usize..16, k in 1usize..40, n in 1usize..16, seed in 0u64..1024,
    ) {
        let x = common::seeded_uniform(&[m, k], 0.0, 1.0, seed);
        let w = common::seeded_uniform(&[n, k], -1.0, 1.0, seed ^ 0x517c_c1b7);
        let bias = common::seeded_uniform(&[n], -0.5, 0.5, seed ^ 0x2545_f491);
        let (xc, xs) = quantize_symmetric_i8(x.data());
        let (wc, ws) = quantize_symmetric_i8(w.data());
        let got = matmul_i8_a_bt_in(
            &ExecCtx::serial(), m, k, n, &xc, &wc, xs * ws, Some(bias.data()), false,
        );
        // f32 reference: x · wᵀ + bias, accumulated exactly.
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for t in 0..k {
                    acc += f64::from(x.data()[i * k + t]) * f64::from(w.data()[j * k + t]);
                }
                want[i * n + j] = (acc + f64::from(bias.data()[j])) as f32;
            }
        }
        let bound = common::i8_quantization_bound(k, x.max_abs(), w.max_abs());
        let stats = common::ulp_stats(got.data(), &want);
        prop_assert!(
            stats.max_abs <= f64::from(bound),
            "max abs {} exceeds bound {bound} at {m}x{k}x{n}",
            stats.max_abs
        );
    }
}

#[test]
fn saturated_codes_are_exact() {
    // Every code at the ±127 rails: products are ±16129 and the result
    // is exactly representable, so even against f32 outputs the kernel
    // must be exact (k·16129 stays far inside f32's integer range here).
    let (m, k, n) = (3usize, 77usize, 5usize);
    let wc = vec![127i8; m * k];
    let ac: Vec<i8> = (0..k * n)
        .map(|i| if i % 2 == 0 { 127 } else { -127 })
        .collect();
    let got = matmul_i8_in(&ExecCtx::serial(), m, k, n, &wc, &ac, 1.0, false);
    let want = matmul_i8_reference(m, k, n, &wc, &ac, 1.0);
    assert_eq!(got, want);
    for j in 0..n {
        let expect: i64 = (0..k).map(|t| 127 * i64::from(ac[t * n + j])).sum();
        // All m rows of wc are identical, so every row agrees.
        for i in 0..m {
            assert_eq!(got.data()[i * n + j], expect as f32, "({i},{j})");
        }
    }
}

#[test]
fn long_k_does_not_wrap_the_accumulator() {
    // K large enough that a saturated i32 accumulator would overflow
    // (140_000 · 127² ≈ 2.26e9 > i32::MAX): the split-K/i64 widening
    // path must return the exact product.
    let k = 140_000usize;
    let wc = vec![127i8; k];
    let ac = vec![127i8; 2 * k];
    let got = matmul_i8_in(&ExecCtx::serial(), 1, k, 2, &wc, &ac, 1.0, false);
    let expect = (k as i64 * 127 * 127) as f32;
    assert_eq!(got.data(), &[expect, expect]);
    assert_eq!(got, matmul_i8_reference(1, k, 2, &wc, &ac, 1.0));
}

#[test]
fn ulp_machinery_is_sound() {
    // Self-test of the harness the suite gates on.
    assert_eq!(common::ulp_distance(1.0, 1.0), 0);
    assert_eq!(
        common::ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)),
        1
    );
    // Distance is symmetric and counts across zero.
    assert_eq!(
        common::ulp_distance(-f32::MIN_POSITIVE, f32::MIN_POSITIVE),
        common::ulp_distance(f32::MIN_POSITIVE, -f32::MIN_POSITIVE),
    );
    assert_eq!(
        common::ulp_distance(0.0, f32::MIN_POSITIVE.min(f32::from_bits(1))),
        1
    );
    let s = common::ulp_stats(&[1.0, 2.0], &[1.0, 2.5]);
    assert_eq!(s.max_ulp, common::ulp_distance(2.0, 2.5));
    assert!((s.max_abs - 0.5).abs() < 1e-12);
    assert!((s.max_rel - 0.2).abs() < 1e-9);
    assert!((s.mean_rel - 0.1).abs() < 1e-9);
}
