//! Cross-crate properties of the error and energy models: the injected
//! noise in real network layers matches the closed-form model, the Fig. 8
//! mapping is exact, and the per-VMAC simulator validates the lumped
//! Gaussian abstraction.

use ams_repro::core::energy::{adc_energy_pj, mac_energy_fj};
use ams_repro::core::tradeoff::{equivalent_enob, AccuracyCurve};
use ams_repro::core::vmac::Vmac;
use ams_repro::core::vmac_sim::{AdcBehavior, VmacSimulator};
use ams_repro::models::{HardwareConfig, InputKind, QConv2d};
use ams_repro::nn::{Layer, Mode};
use ams_repro::quant::QuantConfig;
use ams_repro::tensor::{rng, ExecCtx};
use proptest::prelude::*;

mod common;

#[test]
fn qconv_noise_matches_model_sigma() {
    // Build the same conv twice (same init seed), once quiet and once
    // noisy; the difference of outputs is exactly the injected error.
    for (enob, c_in) in [(6.0, 4usize), (8.0, 8), (10.0, 16)] {
        let vmac = Vmac::new(8, 8, 8, enob);
        let quant = QuantConfig::w8a8();
        let mut r1 = rng::seeded(11);
        let mut quiet = QConv2d::new(
            "c",
            c_in,
            8,
            3,
            1,
            1,
            &HardwareConfig::quantized(quant),
            InputKind::Unit,
            0,
            &mut r1,
        );
        let mut r2 = rng::seeded(11);
        let mut noisy = QConv2d::new(
            "c",
            c_in,
            8,
            3,
            1,
            1,
            &HardwareConfig::ams(quant, vmac),
            InputKind::Unit,
            0,
            &mut r2,
        );
        let x = common::seeded_uniform(&[8, c_in, 10, 10], 0.0, 1.0, 23);
        let clean = quiet.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let dirty = noisy.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let diff = dirty.sub(&clean);
        let measured = (diff
            .data()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            / diff.len() as f64)
            .sqrt();
        let model = vmac.total_error_sigma(c_in * 9);
        assert!(
            (measured / model - 1.0).abs() < 0.08,
            "enob {enob}, c_in {c_in}: measured {measured} vs model {model}"
        );
    }
}

#[test]
fn per_vmac_simulation_validates_lumped_model() {
    // The paper's abstraction (one Gaussian per output with Eq. 2's σ)
    // should match actual chunked ADC quantization within ~15%.
    for (enob, n_mult, n_tot) in [(7.0, 8usize, 256usize), (8.0, 16, 512), (9.0, 4, 128)] {
        let vmac = Vmac::new(8, 8, n_mult, enob);
        let sim = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
        let rms = sim.empirical_rms_error(n_tot, 300, 5);
        let model = vmac.total_error_sigma(n_tot);
        let ratio = rms / model;
        assert!(
            (0.8..1.2).contains(&ratio),
            "({enob},{n_mult},{n_tot}): ratio {ratio}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Fig. 8 equal-error mapping is exact: a design point and its
    /// N_mult = 8 equivalent inject identical per-layer σ.
    #[test]
    fn fig8_mapping_preserves_sigma(
        enob in 4.0f64..16.0,
        n_mult_log in 0u32..9,
        n_tot in 1usize..8192,
    ) {
        let n_mult = 1usize << n_mult_log;
        let direct = Vmac::new(8, 8, n_mult, enob).total_error_sigma(n_tot);
        let eq = equivalent_enob(enob, n_mult, 8);
        // Equivalent ENOB may be off-grid; the model is continuous in it.
        let mapped = Vmac::new(8, 8, 8, eq.max(0.1)).total_error_sigma(n_tot);
        prop_assert!((direct / mapped - 1.0).abs() < 1e-9);
    }

    /// Energy is monotone: non-decreasing in ENOB, strictly amortized by
    /// N_mult.
    #[test]
    fn energy_monotonicity(enob in 1.0f64..19.0, n_mult in 1usize..512) {
        prop_assert!(adc_energy_pj(enob + 0.25) >= adc_energy_pj(enob));
        prop_assert!(mac_energy_fj(enob, n_mult * 2) < mac_energy_fj(enob, n_mult));
    }

    /// Eq. 2 scaling laws: +1 bit quarters the variance; doubling N_mult
    /// doubles it.
    #[test]
    fn variance_scaling_laws(enob in 2.0f64..15.0, n_mult_log in 0u32..8, n_tot in 64usize..4096) {
        let n_mult = 1usize << n_mult_log;
        let v = Vmac::new(8, 8, n_mult, enob);
        let var = v.total_error_variance(n_tot);
        prop_assert!((v.with_enob(enob + 1.0).total_error_variance(n_tot) * 4.0 / var - 1.0).abs() < 1e-9);
        prop_assert!((v.with_n_mult(n_mult * 2).total_error_variance(n_tot) / (2.0 * var) - 1.0).abs() < 1e-9);
    }

    /// Accuracy-curve interpolation stays within the envelope of its
    /// sample values.
    #[test]
    fn curve_interpolation_bounded(query in 0.0f64..20.0) {
        let curve = AccuracyCurve::new(
            8,
            vec![(6.0, 0.5), (8.0, 0.2), (10.0, 0.05), (12.0, 0.01)],
        ).expect("valid");
        let loss = curve.loss_at(query);
        prop_assert!((0.01..=0.5).contains(&loss));
        // Monotone for a monotone sample set.
        prop_assert!(curve.loss_at(query) >= curve.loss_at(query + 0.5) - 1e-12);
    }

    /// ADC conversion error is bounded by half a step inside full scale.
    #[test]
    fn adc_conversion_error_bounded(s in -7.0f64..7.0, enob in 3.0f64..14.0) {
        let fs = 8.0;
        let step = 2.0 * fs / 2f64.powf(enob);
        let q = VmacSimulator::convert(s, enob, fs);
        prop_assert!((q - s).abs() <= step / 2.0 + 1e-12);
    }
}
