//! Integration tests of the experiment harness itself: caching, the
//! no-training figures, and the Fig. 8 pipeline from a measured curve.

use ams_repro::core::energy::{adc_energy_pj, mac_energy_fj};
use ams_repro::exp::{Experiments, Scale, Stat};

mod common;
use common::temp_results;

#[test]
fn fig7_is_deterministic_and_respects_bound() {
    let exp = Experiments::new(Scale::test(), temp_results("fig7"));
    let a = exp.fig7();
    let b = exp.fig7();
    assert_eq!(a.points, b.points, "survey must be seed-deterministic");
    assert_eq!(a.violations, 0);
    // The hull must sit on or above the model line. Bins report their
    // center, but the cheapest point may sit anywhere inside the bin and
    // the model quadruples per bit in the thermal region — so compare
    // against the model at the bin's *lower edge* (conservative).
    let half_width = if a.hull.len() >= 2 {
        (a.hull[1].0 - a.hull[0].0) / 2.0
    } else {
        0.0
    };
    for &(center, min_pj) in &a.hull {
        let edge = center - half_width;
        assert!(
            min_pj >= adc_energy_pj(edge.max(0.1)) * 0.98,
            "hull below model at bin [{edge}, {center}]: {min_pj}"
        );
    }
    let _ = std::fs::remove_dir_all(exp.results_dir());
}

#[test]
fn checkpoint_cache_is_reused() {
    let dir = temp_results("cache");
    let exp = Experiments::new(Scale::test(), &dir);
    let t0 = std::time::Instant::now();
    let (_, first) = exp.fp32_baseline();
    let cold = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (_, second) = exp.fp32_baseline();
    let warm = t1.elapsed();
    assert_eq!(first, second, "cached stat must match");
    assert!(
        warm < cold / 2,
        "cache hit ({warm:?}) should be much faster than training ({cold:?})"
    );
    // A second suite over the same directory also hits the cache.
    let exp2 = Experiments::new(Scale::test(), &dir);
    let (_, third) = exp2.fp32_baseline();
    assert_eq!(first, third);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fig8_grid_reference_column_matches_curve() {
    // Build fig8 from the test-scale fig4 (trains a handful of tiny nets).
    let exp = Experiments::new(Scale::test(), temp_results("fig8"));
    let f8 = exp.fig8();
    let scale = Scale::test();
    let ref_col = scale
        .fig8_n_mults
        .iter()
        .position(|&n| n == 8)
        .expect("grids include the reference N_mult");
    for (ei, &enob) in f8.grid.enobs().iter().enumerate() {
        let cell = f8.grid.cell(ei, ref_col);
        assert!(
            (cell.loss - f8.curve.loss_at(enob)).abs() < 1e-12,
            "reference column must read the measured curve directly"
        );
        assert!((cell.mac_energy_fj - mac_energy_fj(enob, 8)).abs() < 1e-9);
    }
    // Tighter loss targets can never be cheaper.
    let mut last = 0.0f64;
    for (_, energy) in f8.min_energy.iter().rev() {
        if let Some(fj) = energy {
            assert!(*fj >= last - 1e-9, "tighter target got cheaper");
            last = *fj;
        }
    }
    let _ = std::fs::remove_dir_all(exp.results_dir());
}

#[test]
fn stat_protocol_matches_paper_reporting() {
    // Five passes, mean ± sample std — degenerate cases behave.
    let s = Stat::from_samples(&[0.78, 0.78, 0.78, 0.78, 0.78]).unwrap();
    assert_eq!(s.mean, 0.78);
    assert_eq!(s.std, 0.0);
    let loss = Stat {
        mean: 0.74,
        std: 0.003,
    }
    .loss_relative_to(Stat {
        mean: 0.78,
        std: 0.004,
    });
    assert!((loss.mean - 0.04).abs() < 1e-12);
    assert!(loss.std >= 0.004);
}
