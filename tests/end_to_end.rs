//! End-to-end integration: the full paper workflow — pretrain, surgery,
//! retraining, evaluation — at test scale, plus the checkpoint plumbing
//! that carries weights between hardware configurations.

use ams_repro::core::vmac::Vmac;
use ams_repro::data::SynthConfig;
use ams_repro::exp::{eval_accuracy, eval_passes, train_scheduled, train_with_eval};
use ams_repro::models::{FreezePolicy, HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_repro::nn::{Checkpoint, Layer};
use ams_repro::quant::QuantConfig;
use ams_repro::tensor::ExecCtx;

mod common;

fn pretrained() -> (
    ams_repro::data::SynthImageNet,
    ResNetMiniConfig,
    Checkpoint,
    f32,
) {
    // More data and epochs than SynthConfig::tiny's defaults: these tests
    // need a solidly-trained starting point, not a speed record.
    let data = SynthConfig {
        train_per_class: 48,
        val_per_class: 16,
        ..SynthConfig::tiny()
    }
    .generate();
    let arch = ResNetMiniConfig::tiny();
    let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
    let _out = train_scheduled(
        &ExecCtx::serial(),
        &mut net,
        &data.train,
        &data.val,
        12,
        0.08,
        16,
        0,
        &[8, 11],
    );
    let acc = eval_accuracy(&ExecCtx::serial(), &mut net, &data.val, 16);
    (data, arch, Checkpoint::from_layer(&mut net), acc)
}

#[test]
fn paper_workflow_pretrain_surgery_retrain() {
    let (data, arch, fp32_ckpt, fp32_acc) = pretrained();
    let chance = 1.0 / arch.classes as f32;
    assert!(
        fp32_acc > chance + 0.3,
        "FP32 pretraining failed: {fp32_acc}"
    );

    // Surgery: drop the FP32 weights into quantized hardware. DoReFa's
    // tanh/max-normalized weight transform rescales every layer, so
    // accuracy drops until retraining re-adapts (which is why the paper
    // always retrains after surgery) — but the network must stay far
    // above chance.
    let quant = QuantConfig::w8a8();
    let mut qnet = ResNetMini::new(&arch, &HardwareConfig::quantized(quant));
    fp32_ckpt.load_into(&mut qnet).expect("same architecture");
    let q_acc = eval_accuracy(&ExecCtx::serial(), &mut qnet, &data.val, 16);
    assert!(
        q_acc > chance + 0.3,
        "8b surgery should keep the network functional: {q_acc} vs chance {chance}"
    );

    // Heavy AMS noise at eval destroys accuracy...
    let noisy_vmac = Vmac::new(8, 8, 8, 2.0);
    let mut noisy = ResNetMini::new(&arch, &HardwareConfig::ams_eval_only(quant, noisy_vmac));
    fp32_ckpt.load_into(&mut noisy).expect("same architecture");
    let noisy_acc = eval_passes(&ExecCtx::serial(), &mut noisy, &data.val, 3, 16, true, 9);
    assert!(
        noisy_acc.mean < f64::from(fp32_acc) - 0.2,
        "ENOB 2 should clearly degrade accuracy: {} vs {fp32_acc}",
        noisy_acc.mean
    );

    // ...and a moderate level degrades less than the heavy one.
    let mild_vmac = Vmac::new(8, 8, 8, 6.0);
    let mut mild = ResNetMini::new(&arch, &HardwareConfig::ams_eval_only(quant, mild_vmac));
    fp32_ckpt.load_into(&mut mild).expect("same architecture");
    let mild_acc = eval_passes(&ExecCtx::serial(), &mut mild, &data.val, 3, 16, true, 9);
    assert!(
        mild_acc.mean > noisy_acc.mean,
        "monotone degradation: ENOB 6 ({}) must beat ENOB 2 ({})",
        mild_acc.mean,
        noisy_acc.mean
    );

    // Retraining with the error in the loop must keep the network
    // trainable (the last layer is excluded during training, per §2).
    let mut retrained = ResNetMini::new(&arch, &HardwareConfig::ams(quant, mild_vmac));
    fp32_ckpt
        .load_into(&mut retrained)
        .expect("same architecture");
    let out = train_with_eval(
        &ExecCtx::serial(),
        &mut retrained,
        &data.train,
        &data.val,
        2,
        0.01,
        16,
        3,
    );
    assert!(
        out.best_val_acc > f64::from(chance) + 0.2,
        "retraining with AMS error lost the network: {}",
        out.best_val_acc
    );
}

#[test]
fn freezing_policies_affect_only_their_groups() {
    let (_data, arch, fp32_ckpt, _) = pretrained();
    let vmac = Vmac::new(8, 8, 8, 5.0);
    let hw = HardwareConfig::ams(QuantConfig::w8a8(), vmac);
    let mut net = ResNetMini::new(&arch, &hw);
    fp32_ckpt.load_into(&mut net).expect("same architecture");
    net.apply_freeze(FreezePolicy::BnFc);

    // Snapshot, train one step, verify frozen groups did not move.
    let before = Checkpoint::from_layer(&mut net);
    let data = SynthConfig::tiny().generate();
    train_with_eval(
        &ExecCtx::serial(),
        &mut net,
        &data.train,
        &data.val,
        1,
        0.05,
        16,
        0,
    );
    let mut moved_frozen = Vec::new();
    let mut moved_free = 0usize;
    net.for_each_param(&mut |p| {
        let old = before.get(p.name()).expect("snapshotted");
        let changed = old.data().iter().zip(p.value.data()).any(|(a, b)| a != b);
        if p.frozen && changed {
            moved_frozen.push(p.name().to_string());
        }
        if !p.frozen && changed {
            moved_free += 1;
        }
    });
    assert!(
        moved_frozen.is_empty(),
        "frozen parameters moved: {moved_frozen:?}"
    );
    assert!(moved_free > 0, "unfrozen parameters should train");
}

#[test]
fn checkpoint_json_round_trip_through_disk() {
    let (_, arch, ckpt, _) = pretrained();
    let path = std::env::temp_dir().join("ams_repro_e2e_ckpt.json");
    ckpt.save_json(&path).expect("write");
    let loaded = Checkpoint::load_json(&path).expect("read");
    let mut a = ResNetMini::new(&arch, &HardwareConfig::fp32());
    let mut b = ResNetMini::new(&arch, &HardwareConfig::fp32());
    ckpt.load_into(&mut a).expect("load original");
    loaded.load_into(&mut b).expect("load round-tripped");
    let x = common::seeded_uniform(&[2, 3, 8, 8], 0.0, 1.0, 1);
    use ams_repro::nn::Mode;
    assert_eq!(
        a.forward(&ExecCtx::serial(), &x, Mode::Eval),
        b.forward(&ExecCtx::serial(), &x, Mode::Eval)
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn noisy_eval_identical_for_any_thread_count() {
    // The AMS noise streams are seeded per layer, never per worker, so a
    // stochastic evaluation must report the exact same statistics whether
    // it runs serially or on a pool — the determinism contract that makes
    // `--threads` a pure wall-clock knob.
    let (data, arch, ckpt, _) = pretrained();
    let vmac = Vmac::new(8, 8, 8, 5.0);
    let eval_at = |threads: usize| {
        let ctx = if threads == 1 {
            ExecCtx::serial()
        } else {
            ExecCtx::with_threads(threads)
        };
        let mut net = ResNetMini::new(
            &arch,
            &HardwareConfig::ams_eval_only(QuantConfig::w8a8(), vmac),
        );
        ckpt.load_into(&mut net).expect("same architecture");
        eval_passes(&ctx, &mut net, &data.val, 3, 16, true, 41)
    };
    let serial = eval_at(1);
    for threads in [2usize, 8] {
        let stat = eval_at(threads);
        assert_eq!(
            serial.mean.to_bits(),
            stat.mean.to_bits(),
            "{threads} threads"
        );
        assert_eq!(
            serial.std.to_bits(),
            stat.std.to_bits(),
            "{threads} threads"
        );
    }
}

#[test]
fn stochastic_eval_reports_nonzero_variance() {
    let (data, arch, ckpt, _) = pretrained();
    let vmac = Vmac::new(8, 8, 8, 5.0);
    let mut net = ResNetMini::new(
        &arch,
        &HardwareConfig::ams_eval_only(QuantConfig::w8a8(), vmac),
    );
    ckpt.load_into(&mut net).expect("same architecture");
    let stat = eval_passes(&ExecCtx::serial(), &mut net, &data.val, 4, 16, true, 77);
    assert!(stat.std > 0.0, "independent noisy passes must differ");
    assert!(stat.mean > 0.0 && stat.mean <= 1.0);
}
