//! `ams-repro` — workspace façade for the reproduction of
//! *"Analog/Mixed-Signal Hardware Error Modeling for Deep Learning
//! Inference"* (Rekhi et al., DAC 2019).
//!
//! This crate re-exports the public API of every sub-crate so that examples
//! and downstream users can depend on a single package:
//!
//! * [`tensor`] — dense `f32` tensors, matmul, im2col ([`ams_tensor`]);
//! * [`nn`] — layers, losses, SGD, checkpoints ([`ams_nn`]);
//! * [`quant`] — DoReFa quantization with straight-through estimators
//!   ([`ams_quant`]);
//! * [`core`] — the paper's AMS VMAC error and energy models ([`ams_core`]);
//! * [`data`] — SynthImageNet procedural datasets ([`ams_data`]);
//! * [`models`] — ResNet-mini with quantization + AMS surgery
//!   ([`ams_models`]);
//! * [`exp`] — the experiment harness regenerating every paper table and
//!   figure ([`ams_exp`]).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or run:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ams_core as core;
pub use ams_data as data;
pub use ams_exp as exp;
pub use ams_models as models;
pub use ams_nn as nn;
pub use ams_quant as quant;
pub use ams_tensor as tensor;
